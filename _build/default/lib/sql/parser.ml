(* Recursive-descent parser for the SQL subset.

   Covers everything the paper's queries need: SELECT with window
   functions (OVER with PARTITION BY / ORDER BY / ROWS frames), inner and
   left outer joins, comma joins, CASE, IN, BETWEEN, MOD/COALESCE/...,
   UNION ALL, subqueries in FROM, and the DDL/DML statements of the
   engine (CREATE TABLE / INDEX / [MATERIALIZED] VIEW, INSERT, UPDATE,
   DELETE, DROP, REFRESH, EXPLAIN). *)

exception Parse_error of string

let parse_error fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

type state = {
  toks : Lexer.lexeme array;
  mutable pos : int;
  src : string;
}

let make_state src = { toks = Array.of_list (Lexer.tokenize src); pos = 0; src }

let peek st = st.toks.(st.pos).Lexer.token
let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1).Lexer.token
  else Token.Eof

let advance st = st.pos <- st.pos + 1

let context st =
  let off = st.toks.(st.pos).Lexer.offset in
  let start = max 0 (off - 20) in
  let stop = min (String.length st.src) (off + 20) in
  Printf.sprintf "near \"%s\" (offset %d)" (String.sub st.src start (stop - start)) off

(* Keyword matching is case-insensitive. *)
let is_kw st kw =
  match peek st with
  | Token.Ident s -> String.uppercase_ascii s = kw
  | _ -> false

let is_kw2 st kw =
  match peek2 st with
  | Token.Ident s -> String.uppercase_ascii s = kw
  | _ -> false

let accept_kw st kw =
  if is_kw st kw then begin
    advance st;
    true
  end
  else false

let expect_kw st kw =
  if not (accept_kw st kw) then
    parse_error "expected %s %s, found %s" kw (context st) (Token.to_string (peek st))

let accept_tok st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

let expect_tok st tok =
  if not (accept_tok st tok) then
    parse_error "expected %s %s, found %s" (Token.to_string tok) (context st)
      (Token.to_string (peek st))

(* Identifiers that terminate an implicit alias position. *)
let reserved_after_table =
  [ "WHERE"; "GROUP"; "ORDER"; "HAVING"; "LIMIT"; "ON"; "JOIN"; "LEFT"; "RIGHT";
    "INNER"; "OUTER"; "UNION"; "CROSS"; "AS"; "SET"; "VALUES" ]

let parse_ident st =
  match peek st with
  | Token.Ident s ->
    advance st;
    s
  | t -> parse_error "expected identifier %s, found %s" (context st) (Token.to_string t)

let parse_int st =
  match peek st with
  | Token.Int_lit i ->
    advance st;
    i
  | t -> parse_error "expected integer %s, found %s" (context st) (Token.to_string t)

(* ---- Expressions ---- *)

let aggregate_names = [ "SUM"; "COUNT"; "AVG"; "MIN"; "MAX" ]
let window_function_names =
  aggregate_names
  @ [ "ROW_NUMBER"; "RANK"; "DENSE_RANK"; "LAG"; "LEAD"; "FIRST_VALUE"; "LAST_VALUE" ]

let rec parse_expr st : Ast.expr = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if accept_kw st "OR" then Ast.Binary (Ast.Or, lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_not st in
  if accept_kw st "AND" then Ast.Binary (Ast.And, lhs, parse_and st) else lhs

and parse_not st =
  if accept_kw st "NOT" then Ast.Not (parse_not st) else parse_predicate st

and parse_predicate st =
  let lhs = parse_additive st in
  let cmp op =
    advance st;
    Ast.Binary (op, lhs, parse_additive st)
  in
  match peek st with
  | Token.Eq -> cmp Ast.Eq
  | Token.Neq -> cmp Ast.Neq
  | Token.Lt -> cmp Ast.Lt
  | Token.Le -> cmp Ast.Le
  | Token.Gt -> cmp Ast.Gt
  | Token.Ge -> cmp Ast.Ge
  | Token.Ident _ when is_kw st "BETWEEN" ->
    advance st;
    let lo = parse_additive st in
    expect_kw st "AND";
    let hi = parse_additive st in
    Ast.Between (lhs, lo, hi)
  | Token.Ident _ when is_kw st "NOT" && is_kw2 st "BETWEEN" ->
    advance st;
    advance st;
    let lo = parse_additive st in
    expect_kw st "AND";
    let hi = parse_additive st in
    Ast.Not (Ast.Between (lhs, lo, hi))
  | Token.Ident _ when is_kw st "IN" ->
    advance st;
    expect_tok st Token.Lparen;
    let items = parse_expr_list st in
    expect_tok st Token.Rparen;
    Ast.In_list (lhs, items)
  | Token.Ident _ when is_kw st "NOT" && is_kw2 st "IN" ->
    advance st;
    advance st;
    expect_tok st Token.Lparen;
    let items = parse_expr_list st in
    expect_tok st Token.Rparen;
    Ast.Not (Ast.In_list (lhs, items))
  | Token.Ident _ when is_kw st "IS" ->
    advance st;
    if accept_kw st "NOT" then begin
      expect_kw st "NULL";
      Ast.Is_not_null lhs
    end
    else begin
      expect_kw st "NULL";
      Ast.Is_null lhs
    end
  | _ -> lhs

and parse_additive st =
  let rec loop lhs =
    match peek st with
    | Token.Plus ->
      advance st;
      loop (Ast.Binary (Ast.Add, lhs, parse_multiplicative st))
    | Token.Minus ->
      advance st;
      loop (Ast.Binary (Ast.Sub, lhs, parse_multiplicative st))
    | _ -> lhs
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop lhs =
    match peek st with
    | Token.Star ->
      advance st;
      loop (Ast.Binary (Ast.Mul, lhs, parse_unary st))
    | Token.Slash ->
      advance st;
      loop (Ast.Binary (Ast.Div, lhs, parse_unary st))
    | Token.Percent ->
      advance st;
      loop (Ast.Binary (Ast.Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Token.Minus ->
    advance st;
    Ast.Neg (parse_unary st)
  | Token.Plus ->
    advance st;
    parse_unary st
  | _ -> parse_primary st

and parse_expr_list st =
  let e = parse_expr st in
  if accept_tok st Token.Comma then e :: parse_expr_list st else [ e ]

and parse_primary st =
  match peek st with
  | Token.Int_lit i ->
    advance st;
    Ast.Lit (Ast.L_int i)
  | Token.Float_lit f ->
    advance st;
    Ast.Lit (Ast.L_float f)
  | Token.String_lit s ->
    advance st;
    Ast.Lit (Ast.L_string s)
  | Token.Lparen ->
    advance st;
    let e = parse_expr st in
    expect_tok st Token.Rparen;
    e
  | Token.Ident name -> parse_ident_expr st name
  | t -> parse_error "unexpected token %s %s" (Token.to_string t) (context st)

and parse_ident_expr st name =
  let upper = String.uppercase_ascii name in
  match upper with
  | "NULL" ->
    advance st;
    Ast.Lit Ast.L_null
  | "TRUE" ->
    advance st;
    Ast.Lit (Ast.L_bool true)
  | "FALSE" ->
    advance st;
    Ast.Lit (Ast.L_bool false)
  | "DATE" when (match peek2 st with Token.String_lit _ -> true | _ -> false) ->
    advance st;
    (match peek st with
     | Token.String_lit s ->
       advance st;
       Ast.Lit (Ast.L_date s)
     | _ -> assert false)
  | "CASE" ->
    advance st;
    parse_case st
  | "CAST" when peek2 st = Token.Lparen ->
    (* CAST(e AS type) is accepted and treated as a no-op annotation. *)
    advance st;
    expect_tok st Token.Lparen;
    let e = parse_expr st in
    expect_kw st "AS";
    let _ty = parse_ident st in
    expect_tok st Token.Rparen;
    e
  | _ when peek2 st = Token.Lparen ->
    (* function call, possibly with OVER *)
    advance st;
    advance st;
    let arg_star = accept_tok st Token.Star in
    let args =
      if arg_star then [ Ast.Star ]
      else if peek st = Token.Rparen then []
      else parse_expr_list st
    in
    expect_tok st Token.Rparen;
    if is_kw st "OVER" then begin
      advance st;
      let spec = parse_window_spec st in
      if not (List.mem upper window_function_names) then
        parse_error "%s is not a window function" name;
      Ast.Window
        {
          Ast.w_func = upper;
          w_args = args;
          w_partition = spec.w_partition;
          w_order = spec.w_order;
          w_frame = spec.w_frame;
        }
    end
    else Ast.Call (name, args)
  | _ ->
    advance st;
    if accept_tok st Token.Dot then begin
      let col = parse_ident st in
      Ast.Column (Some name, col)
    end
    else Ast.Column (None, name)

and parse_case st =
  let rec whens acc =
    if accept_kw st "WHEN" then begin
      let cond = parse_expr st in
      expect_kw st "THEN";
      let v = parse_expr st in
      whens ((cond, v) :: acc)
    end
    else List.rev acc
  in
  let whens = whens [] in
  if whens = [] then parse_error "CASE needs at least one WHEN %s" (context st);
  let els = if accept_kw st "ELSE" then Some (parse_expr st) else None in
  expect_kw st "END";
  Ast.Case (whens, els)

and parse_window_spec st : Ast.window_fn =
  expect_tok st Token.Lparen;
  let partition =
    if is_kw st "PARTITION" then begin
      advance st;
      expect_kw st "BY";
      parse_expr_list st
    end
    else []
  in
  let order =
    if is_kw st "ORDER" then begin
      advance st;
      expect_kw st "BY";
      parse_order_items st
    end
    else []
  in
  let frame =
    if is_kw st "ROWS" then begin
      advance st;
      Some (parse_frame st Ast.Frame_rows)
    end
    else if is_kw st "RANGE" then begin
      advance st;
      Some (parse_frame st Ast.Frame_range)
    end
    else None
  in
  expect_tok st Token.Rparen;
  { Ast.w_func = ""; w_args = []; w_partition = partition; w_order = order; w_frame = frame }

and parse_frame_bound st : Ast.frame_bound =
  if accept_kw st "UNBOUNDED" then
    if accept_kw st "PRECEDING" then Ast.Unbounded_preceding
    else begin
      expect_kw st "FOLLOWING";
      Ast.Unbounded_following
    end
  else if accept_kw st "CURRENT" then begin
    expect_kw st "ROW";
    Ast.Current_row
  end
  else begin
    let n = parse_int st in
    if accept_kw st "PRECEDING" then Ast.Preceding n
    else begin
      expect_kw st "FOLLOWING";
      Ast.Following n
    end
  end

and parse_frame st mode : Ast.frame_clause =
  if accept_kw st "BETWEEN" then begin
    let lo = parse_frame_bound st in
    expect_kw st "AND";
    let hi = parse_frame_bound st in
    { Ast.frame_mode = mode; frame_lo = lo; frame_hi = hi }
  end
  else
    (* single-bound shorthand: ROWS b means BETWEEN b AND CURRENT ROW *)
    let lo = parse_frame_bound st in
    { Ast.frame_mode = mode; frame_lo = lo; frame_hi = Ast.Current_row }

and parse_order_items st =
  let item () =
    let e = parse_expr st in
    let asc =
      if accept_kw st "ASC" then true else if accept_kw st "DESC" then false else true
    in
    { Ast.o_expr = e; o_asc = asc }
  in
  let rec loop acc =
    let i = item () in
    if accept_tok st Token.Comma then loop (i :: acc) else List.rev (i :: acc)
  in
  loop []

(* ---- SELECT ---- *)

let rec parse_query st : Ast.query =
  let body = parse_query_body st in
  let order_by =
    if is_kw st "ORDER" then begin
      advance st;
      expect_kw st "BY";
      parse_order_items st
    end
    else []
  in
  let limit = if accept_kw st "LIMIT" then Some (parse_int st) else None in
  { Ast.body; order_by; limit }

and parse_query_body st : Ast.query_body =
  let lhs = parse_query_term st in
  let rec loop lhs =
    if is_kw st "UNION" then begin
      advance st;
      let all = accept_kw st "ALL" in
      let rhs = parse_query_term st in
      loop (Ast.Union { all; left = lhs; right = rhs })
    end
    else lhs
  in
  loop lhs

and parse_query_term st : Ast.query_body =
  if accept_tok st Token.Lparen then begin
    let body = parse_query_body st in
    expect_tok st Token.Rparen;
    body
  end
  else parse_select_core st

and parse_select_core st : Ast.query_body =
  expect_kw st "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  let _ = accept_kw st "ALL" in
  let items = parse_select_items st in
  let from = if accept_kw st "FROM" then parse_from_list st else [] in
  let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
  let group_by =
    if is_kw st "GROUP" then begin
      advance st;
      expect_kw st "BY";
      parse_expr_list st
    end
    else []
  in
  let having = if accept_kw st "HAVING" then Some (parse_expr st) else None in
  Ast.Select { distinct; items; from; where; group_by; having }

and parse_select_items st =
  let item () =
    if accept_tok st Token.Star then Ast.Sel_star
    else if
      (match peek st, peek2 st with
       | Token.Ident _, Token.Dot -> true
       | _ -> false)
      &&
      (match st.toks.(st.pos + 2).Lexer.token with
       | Token.Star -> true
       | _ -> false)
    then begin
      let t = parse_ident st in
      advance st (* dot *);
      advance st (* star *);
      Ast.Sel_table_star t
    end
    else begin
      let e = parse_expr st in
      let alias =
        if accept_kw st "AS" then Some (parse_ident st)
        else
          match peek st with
          | Token.Ident s
            when not (List.mem (String.uppercase_ascii s)
                        ("FROM" :: reserved_after_table)) ->
            advance st;
            Some s
          | _ -> None
      in
      Ast.Sel_expr (e, alias)
    end
  in
  let rec loop acc =
    let i = item () in
    if accept_tok st Token.Comma then loop (i :: acc) else List.rev (i :: acc)
  in
  loop []

and parse_from_list st =
  let rec loop acc =
    let t = parse_join_chain st in
    if accept_tok st Token.Comma then loop (t :: acc) else List.rev (t :: acc)
  in
  loop []

and parse_join_chain st =
  let lhs = parse_table_primary st in
  let rec loop lhs =
    if is_kw st "JOIN" || (is_kw st "INNER" && is_kw2 st "JOIN") then begin
      if is_kw st "INNER" then advance st;
      advance st;
      let rhs = parse_table_primary st in
      expect_kw st "ON";
      let cond = parse_expr st in
      loop (Ast.Join { kind = Ast.Join_inner; left = lhs; right = rhs; cond })
    end
    else if is_kw st "LEFT" then begin
      advance st;
      let _ = accept_kw st "OUTER" in
      expect_kw st "JOIN";
      let rhs = parse_table_primary st in
      expect_kw st "ON";
      let cond = parse_expr st in
      loop (Ast.Join { kind = Ast.Join_left; left = lhs; right = rhs; cond })
    end
    else if is_kw st "CROSS" then begin
      advance st;
      expect_kw st "JOIN";
      let rhs = parse_table_primary st in
      loop
        (Ast.Join
           { kind = Ast.Join_inner; left = lhs; right = rhs;
             cond = Ast.Lit (Ast.L_bool true) })
    end
    else lhs
  in
  loop lhs

and parse_table_primary st =
  if accept_tok st Token.Lparen then begin
    let query = parse_query st in
    expect_tok st Token.Rparen;
    let _ = accept_kw st "AS" in
    let alias = parse_ident st in
    Ast.Subquery { query; alias }
  end
  else begin
    let name = parse_ident st in
    let alias =
      if accept_kw st "AS" then Some (parse_ident st)
      else
        match peek st with
        | Token.Ident s
          when not (List.mem (String.uppercase_ascii s) reserved_after_table) ->
          advance st;
          Some s
        | _ -> None
    in
    Ast.Table { name; alias }
  end

(* ---- Statements ---- *)

let parse_column_defs st =
  expect_tok st Token.Lparen;
  let def () =
    let name = parse_ident st in
    let tyname = parse_ident st in
    (* swallow optional length arguments: VARCHAR(20) *)
    if accept_tok st Token.Lparen then begin
      let _ = parse_int st in
      expect_tok st Token.Rparen
    end;
    (* swallow optional NOT NULL / PRIMARY KEY noise *)
    let rec noise () =
      if accept_kw st "NOT" then (expect_kw st "NULL"; noise ())
      else if accept_kw st "PRIMARY" then (expect_kw st "KEY"; noise ())
      else if accept_kw st "NULL" then noise ()
    in
    noise ();
    match Rfview_relalg.Dtype.of_string tyname with
    | Some ty -> { Ast.col_name = name; col_type = ty }
    | None -> parse_error "unknown type %s" tyname
  in
  let rec loop acc =
    let d = def () in
    if accept_tok st Token.Comma then loop (d :: acc) else List.rev (d :: acc)
  in
  let defs = loop [] in
  expect_tok st Token.Rparen;
  defs

let rec parse_statement st : Ast.statement =
  if accept_kw st "EXPLAIN" then
    if accept_kw st "ANALYZE" then Ast.St_explain_analyze (parse_statement st)
    else Ast.St_explain (parse_statement st)
  else if is_kw st "SELECT" || peek st = Token.Lparen then Ast.St_query (parse_query st)
  else if accept_kw st "CREATE" then parse_create st
  else if accept_kw st "INSERT" then parse_insert st
  else if accept_kw st "UPDATE" then parse_update st
  else if accept_kw st "DELETE" then parse_delete st
  else if accept_kw st "DROP" then parse_drop st
  else if accept_kw st "REFRESH" then begin
    let _ = accept_kw st "MATERIALIZED" in
    expect_kw st "VIEW";
    Ast.St_refresh_view (parse_ident st)
  end
  else parse_error "unexpected statement %s" (context st)

and parse_create st =
  if accept_kw st "TABLE" then begin
    let name = parse_ident st in
    let columns = parse_column_defs st in
    Ast.St_create_table { name; columns }
  end
  else if accept_kw st "INDEX" then begin
    let name = parse_ident st in
    expect_kw st "ON";
    let table = parse_ident st in
    expect_tok st Token.Lparen;
    let column = parse_ident st in
    expect_tok st Token.Rparen;
    let ordered =
      if accept_kw st "USING" then begin
        let kind = parse_ident st in
        match String.uppercase_ascii kind with
        | "HASH" -> false
        | "BTREE" | "ORDERED" -> true
        | k -> parse_error "unknown index kind %s" k
      end
      else true
    in
    Ast.St_create_index { name; table; column; ordered }
  end
  else if accept_kw st "UNIQUE" then begin
    expect_kw st "INDEX";
    let name = parse_ident st in
    expect_kw st "ON";
    let table = parse_ident st in
    expect_tok st Token.Lparen;
    let column = parse_ident st in
    expect_tok st Token.Rparen;
    Ast.St_create_index { name; table; column; ordered = true }
  end
  else begin
    let materialized = accept_kw st "MATERIALIZED" in
    expect_kw st "VIEW";
    let name = parse_ident st in
    expect_kw st "AS";
    let query = parse_query st in
    Ast.St_create_view { name; materialized; query }
  end

and parse_insert st =
  expect_kw st "INTO";
  let table = parse_ident st in
  let columns =
    if peek st = Token.Lparen then begin
      advance st;
      let rec loop acc =
        let c = parse_ident st in
        if accept_tok st Token.Comma then loop (c :: acc) else List.rev (c :: acc)
      in
      let cols = loop [] in
      expect_tok st Token.Rparen;
      cols
    end
    else []
  in
  expect_kw st "VALUES";
  let row () =
    expect_tok st Token.Lparen;
    let es = parse_expr_list st in
    expect_tok st Token.Rparen;
    es
  in
  let rec rows acc =
    let r = row () in
    if accept_tok st Token.Comma then rows (r :: acc) else List.rev (r :: acc)
  in
  Ast.St_insert { table; columns; rows = rows [] }

and parse_update st =
  let table = parse_ident st in
  expect_kw st "SET";
  let assignment () =
    let col = parse_ident st in
    expect_tok st Token.Eq;
    let e = parse_expr st in
    (col, e)
  in
  let rec loop acc =
    let a = assignment () in
    if accept_tok st Token.Comma then loop (a :: acc) else List.rev (a :: acc)
  in
  let assignments = loop [] in
  let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
  Ast.St_update { table; assignments; where }

and parse_delete st =
  expect_kw st "FROM";
  let table = parse_ident st in
  let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
  Ast.St_delete { table; where }

and parse_drop st =
  if accept_kw st "TABLE" then begin
    let if_exists = accept_kw st "IF" && (expect_kw st "EXISTS"; true) in
    Ast.St_drop_table { name = parse_ident st; if_exists }
  end
  else begin
    let _ = accept_kw st "MATERIALIZED" in
    expect_kw st "VIEW";
    let if_exists = accept_kw st "IF" && (expect_kw st "EXISTS"; true) in
    Ast.St_drop_view { name = parse_ident st; if_exists }
  end

(* ---- Entry points ---- *)

let statement (src : string) : Ast.statement =
  let st = make_state src in
  let stmt = parse_statement st in
  let _ = accept_tok st Token.Semicolon in
  if peek st <> Token.Eof then
    parse_error "trailing input %s" (context st);
  stmt

let statements (src : string) : Ast.statement list =
  let st = make_state src in
  let rec loop acc =
    if peek st = Token.Eof then List.rev acc
    else begin
      let stmt = parse_statement st in
      let _ = accept_tok st Token.Semicolon in
      loop (stmt :: acc)
    end
  in
  loop []

let query (src : string) : Ast.query =
  match statement src with
  | Ast.St_query q -> q
  | _ -> parse_error "expected a query"

let expression (src : string) : Ast.expr =
  let st = make_state src in
  let e = parse_expr st in
  if peek st <> Token.Eof then parse_error "trailing input %s" (context st);
  e
