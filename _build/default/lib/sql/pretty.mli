(** Pretty-printing of the SQL AST back to SQL text.

    The output re-parses to an equivalent AST (round-trip tested); used
    by EXPLAIN, the view catalog and error messages. *)

val literal : Ast.literal -> string
val expr : Ast.expr -> string
val window : Ast.window_fn -> string
val order_item : Ast.order_item -> string
val select_item : Ast.select_item -> string
val table_ref : Ast.table_ref -> string
val select : Ast.select -> string
val query_body : Ast.query_body -> string
val query : Ast.query -> string
val statement : Ast.statement -> string
