(* Lexical tokens of the SQL subset. *)

type t =
  | Ident of string     (* unquoted identifier or keyword, case preserved *)
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Semicolon
  | Star
  | Plus
  | Minus
  | Slash
  | Percent
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Eof

let to_string = function
  | Ident s -> s
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | String_lit s -> Printf.sprintf "'%s'" s
  | Lparen -> "("
  | Rparen -> ")"
  | Comma -> ","
  | Dot -> "."
  | Semicolon -> ";"
  | Star -> "*"
  | Plus -> "+"
  | Minus -> "-"
  | Slash -> "/"
  | Percent -> "%"
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eof -> "<eof>"
