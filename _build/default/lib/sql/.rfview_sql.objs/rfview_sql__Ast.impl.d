lib/sql/ast.ml: List Option Rfview_relalg
