lib/sql/parser.ml: Array Ast Format Lexer List Printf Rfview_relalg String Token
