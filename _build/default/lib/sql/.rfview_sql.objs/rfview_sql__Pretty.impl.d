lib/sql/pretty.ml: Ast Buffer List Printf Rfview_relalg String
