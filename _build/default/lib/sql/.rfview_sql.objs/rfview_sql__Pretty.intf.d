lib/sql/pretty.mli: Ast
