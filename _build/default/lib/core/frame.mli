(** Window frames of simple sequences (paper §2.1).

    A frame describes the operational scope [wL(k), wH(k)] of every
    sequence position [k]:
    - {!Cumulative}: [wL(k) = 0], [wH(k) = k] — year-to-date windows;
    - {!Sliding}[(l, h)]: [wL(k) = k - l], [wH(k) = k + h] with constant
      [l, h >= 0].

    Unlike the paper, the degenerate identity window [l + h = 0] is
    allowed; it is occasionally useful as the target of a derivation. *)

type t =
  | Cumulative
  | Sliding of { l : int; h : int }

(** Raised by {!sliding} on negative parameters. *)
exception Invalid of string

val cumulative : t

(** [sliding ~l ~h] is the (l, h) sliding window.
    @raise Invalid if [l < 0] or [h < 0]. *)
val sliding : l:int -> h:int -> t

val is_cumulative : t -> bool

(** Window size W(k) at position [k]: [k] for cumulative frames,
    [1 + l + h] for sliding ones. *)
val size_at : t -> k:int -> int

(** The constant window size of a sliding frame; [None] for cumulative. *)
val sliding_size : t -> int option

(** [bounds t ~k] is the operational scope [(wL(k), wH(k))]. *)
val bounds : t -> k:int -> int * int

(** The (l, h) parameters of a sliding frame; [None] for cumulative. *)
val params : t -> (int * int) option

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** The SQL ROWS clause denoting this frame, e.g.
    ["ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING"]. *)
val to_sql : t -> string
