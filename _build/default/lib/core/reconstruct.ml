(* Reconstructing raw data values from materialized sequence views
   (paper §3.1 for cumulative views, §3.2 for sliding views).

   The workhorse is the telescoping identity behind the paper's explicit
   forms: for a complete sliding SUM sequence x̃ = (l, h) with window size
   w = 1+l+h, consecutive windows at distance w are exactly adjacent, so

       Σ_{i>=0} x̃_{c-i·w} = C_{c+h}        (T)

   where C_j = Σ_{i<=j} x_i is the prefix sum of the raw data.  Every
   derivation in §3-§6 is a difference of two C values. *)

(* S(c) = Σ_{i>=0} x̃_{c-i·w}, computed for all stored positions in one
   ascending pass (S(c) = x̃_c + S(c-w)); gives C_j = S(j-h) by (T). *)
let telescoped_sums (view : Seqdata.t) : int -> float =
  match Seqdata.frame view, Seqdata.agg view with
  | Frame.Cumulative, Agg.Sum -> fun j -> Seqdata.get view j
  | Frame.Sliding { l; h }, Agg.Sum ->
    let w = 1 + l + h in
    if not (Seqdata.is_complete view) then
      invalid_arg "Reconstruct: the view must be a complete sequence";
    let lo = Seqdata.stored_lo view and hi = Seqdata.stored_hi view in
    (* s.(c - (lo - w)) = S(c); S(c) = 0 for c < lo. *)
    let s = Array.make (hi - lo + 1 + w) 0. in
    for c = lo to hi do
      s.(c - lo + w) <- Seqdata.get view c +. s.(c - lo)
    done;
    let n = Seqdata.length view in
    fun j ->
      (* C saturates at C_n above and is 0 below 0. *)
      let j = max (min j n) 0 in
      let c = j - h in
      if c < lo - w then 0. else s.(c - lo + w)
  | _, (Agg.Min | Agg.Max) ->
    invalid_arg "Reconstruct: MIN/MAX sequences do not determine raw values"

(* Prefix-sum view of the raw data as reconstructed from the view:
   [prefix view j] = C_j = x_1 + ... + x_j. *)
let prefix = telescoped_sums

(* x_k = C_k - C_{k-1}; O(1) after an O(n) preprocessing pass. *)
let raw_all (view : Seqdata.t) : Seqdata.raw =
  let c = telescoped_sums view in
  let n = Seqdata.length view in
  Seqdata.raw_of_array (Array.init n (fun i -> c (i + 1) -. c i))

(* ---- The paper's explicit per-position forms (no preprocessing) ---- *)

(* Cumulative view (§3.1): x_k = x̃_k - x̃_{k-1}. *)
let raw_from_cumulative (view : Seqdata.t) ~k : float =
  match Seqdata.frame view with
  | Frame.Cumulative -> Seqdata.get view k -. Seqdata.get view (k - 1)
  | Frame.Sliding _ -> invalid_arg "raw_from_cumulative: not a cumulative view"

(* Sliding view (§3.2): x_k = Σ_{i>=0} (x̃_{k-h-i·w} - x̃_{k-h-1-i·w}); the
   summation stops at i_up = ⌈k/w⌉ because beyond it both terms are zero
   (the paper's cut-off condition k-h-i·w <= -h). *)
let raw_from_sliding (view : Seqdata.t) ~k : float =
  match Seqdata.frame view with
  | Frame.Cumulative -> invalid_arg "raw_from_sliding: not a sliding view"
  | Frame.Sliding { l; h } ->
    if Seqdata.agg view <> Agg.Sum then
      invalid_arg "raw_from_sliding: only SUM sequences determine raw values";
    if not (Seqdata.is_complete view) then
      invalid_arg "raw_from_sliding: the view must be complete";
    let w = 1 + l + h in
    let rec loop acc pos =
      if pos <= -h then acc
      else
        loop (acc +. Seqdata.get view pos -. Seqdata.get view (pos - 1)) (pos - w)
    in
    loop 0. (k - h)

let raw_value (view : Seqdata.t) ~k : float =
  match Seqdata.frame view with
  | Frame.Cumulative -> raw_from_cumulative view ~k
  | Frame.Sliding _ -> raw_from_sliding view ~k
