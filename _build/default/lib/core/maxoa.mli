(** The MaxO Algorithm (paper §4): derive a sliding-window sequence
    [(ly, hy)] from a materialized complete sequence [(lx, hx)] by
    {e maximally overlapping} view windows.

    Single-sided case (shared upper bound [h], §4.1): adding [x~_k] and
    [x~_(k-∆l)] over-counts their overlap, itself a regular sliding
    sequence — the compensation sequence [z~ = (lx, h-∆l)] — computed by
    the recursion [z~_k = x~_(k-∆l) - x~_(k-(∆l+∆p)) + z~_(k-(∆l+∆p))]
    with the overlap factor [∆p = 1+lx+h-∆l]; then
    [y~_k = x~_k + x~_(k-∆l) - z~_k].

    The double-sided case composes a left pass, a mirrored right pass and
    inclusion-exclusion.  Unlike MinOA, MaxOA also derives MIN/MAX
    sequences (§4.2): covering windows may overlap freely for
    semi-algebraic aggregates. *)

exception Not_derivable of string

(** The paper's §4 precondition for the shared-bound case:
    [0 < ly - lx] and [ly <= h - 1 + 2·lx] (the query window is at most
    twice the view window).  The implementation accepts the slightly
    wider sound range [∆l <= lx + h]. *)
val paper_precondition_single : lx:int -> h:int -> ly:int -> bool

(** [∆l = ly - lx]. *)
val coverage_factor : lx:int -> ly:int -> int

(** [∆p = 1 + lx + h - ∆l]. *)
val overlap_factor : lx:int -> h:int -> dl:int -> int

(** Single-sided derivation with shared upper bound, by the recursive
    form (what an engine with internal caches runs); O(n) total.
    @raise Not_derivable
      on non-SUM views, window shrinking, or [∆l > lx + h]. *)
val derive_left : Seqdata.t -> ly:int -> Seqdata.t

(** Single value of the paper's explicit form
    [y~_k = x~_k + Σ_(i>=1) x~_(k-i(∆l+∆p)) - Σ_(i>=1) x~_(k-((i+1)∆l+i∆p))]. *)
val value_at_left_explicit : Seqdata.t -> ly:int -> k:int -> float

(** The whole sequence by the explicit form — the access pattern of the
    Fig. 10 relational operator. *)
val derive_left_explicit : Seqdata.t -> ly:int -> Seqdata.t

(** Single-sided derivation with shared lower bound, via mirroring. *)
val derive_right : Seqdata.t -> hy:int -> Seqdata.t

(** Double-sided derivation (§4.2): [y~ = y~L + y~R - x~]. *)
val derive : Seqdata.t -> ly:int -> hy:int -> Seqdata.t

(** MIN/MAX coverage precondition: [∆l, ∆h >= 0] and
    [∆l + ∆h <= lx + hx] (the two view windows cover the query window). *)
val minmax_coverage : lx:int -> hx:int -> ly:int -> hy:int -> bool

(** MIN/MAX derivation (§4.2):
    [y~_k = min/max(x~_(k-∆l), x~_(k+∆h))] under {!minmax_coverage}. *)
val derive_minmax : Seqdata.t -> ly:int -> hy:int -> Seqdata.t
