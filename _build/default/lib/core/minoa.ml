(* The MinO Algorithm (paper §5): derive a sliding-window SUM sequence
   ỹ = (ly, hy) from a materialized complete sequence x̃ = (lx, hx) using
   windows with *minimal* overlap.

   Explicit form (with wx = 1+lx+hx, ∆l = ly-lx, ∆h = hy-hx):

       ỹ_k = Σ_{i>=0} x̃_{k+∆h-i·wx}  -  Σ_{i>=1} x̃_{k-∆l-i·wx}

   The positive sequence is right-justified with ỹ_k's window (head centre
   k+∆h) and telescopes down to the origin; the negative sequence starts
   one view-window below k-∆l and removes everything left of ỹ_k's window.
   Both summations stop at i_up = ⌈(k+hy)/wx⌉ (the paper's cut-off): below
   that, window positions precede the data.

   MinOA needs an invertible aggregate — SUM (hence COUNT and AVG), not
   MIN/MAX (§7).  Unlike MaxOA it has no window-size precondition: ∆l and
   ∆h may even be negative, so MinOA can also *shrink* windows. *)

exception Not_derivable of string

let check_view view =
  if Seqdata.agg view <> Agg.Sum then
    raise (Not_derivable "MinOA applies to SUM sequences only");
  if not (Seqdata.is_complete view) then
    raise (Not_derivable "MinOA requires a complete view (header and trailer)");
  match Frame.params (Seqdata.frame view) with
  | None -> raise (Not_derivable "MinOA requires a sliding-window view")
  | Some (lx, hx) -> (lx, hx)

(* One target value by the paper's explicit form: O(k/wx) view lookups. *)
let value_at view ~l ~h ~k =
  let lx, hx = check_view view in
  let wx = 1 + lx + hx in
  let dl = l - lx and dh = h - hx in
  let rec sum_down acc pos =
    (* x̃ vanishes for positions <= -hx *)
    if pos <= -hx then acc else sum_down (acc +. Seqdata.get view pos) (pos - wx)
  in
  sum_down 0. (k + dh) -. sum_down 0. (k - dl - wx)

(* The full derived sequence by the explicit form — the cost profile of
   the relational pattern in Fig. 13. *)
let derive_explicit view ~l ~h : Seqdata.t =
  ignore (check_view view);
  let n = Seqdata.length view in
  let frame = Frame.sliding ~l ~h in
  let lo, hi = Seqdata.complete_range frame ~n in
  let values = Array.init (hi - lo + 1) (fun i -> value_at view ~l ~h ~k:(lo + i)) in
  Seqdata.make frame Agg.Sum ~n ~lo values

(* Fast path: one ascending telescoping pass gives the prefix sums C, then
   ỹ_k = C_{k+h} - C_{k-l-1}: O(n) for the whole sequence. *)
let derive view ~l ~h : Seqdata.t =
  ignore (check_view view);
  let c = Reconstruct.prefix view in
  let n = Seqdata.length view in
  let frame = Frame.sliding ~l ~h in
  let lo, hi = Seqdata.complete_range frame ~n in
  let values =
    Array.init (hi - lo + 1) (fun i ->
        let k = lo + i in
        c (k + h) -. c (k - l - 1))
  in
  Seqdata.make frame Agg.Sum ~n ~lo values
