(* The MaxO Algorithm (paper §4): derive a sliding-window sequence
   ỹ = (ly, hy) from a materialized complete sequence x̃ = (lx, hx) by
   *maximally overlapping* view windows.

   Single-sided case (shared upper bound h = hx = hy, §4.1): adding x̃_k
   and x̃_{k-∆l} (coverage factor ∆l = ly-lx > 0) over-counts the overlap
   of the two windows, which is itself a regular sliding sequence — the
   compensation sequence z̃ = (lx, h-∆l) — computed by the recursion

       z̃_k = x̃_{k-∆l} - x̃_{k-(∆l+∆p)} + z̃_{k-(∆l+∆p)}

   with the overlap factor ∆p = 1+lx+h-∆l, so that

       ỹ_k = x̃_k + x̃_{k-∆l} - z̃_k.

   The double-sided case (§4.2) applies the single-sided pattern on both
   bounds: with ỹL = (ly, hx) and ỹR = (lx, hy) derived single-sidedly,
   inclusion-exclusion of the covering windows gives ỹ = ỹL + ỹR - x̃.
   We obtain the right-sided variant by mirroring the sequence (position
   p ↦ n+1-p turns an (l, h) sequence into an (h, l) one), which keeps a
   single, well-tested implementation of the recursion.

   Unlike MinOA, MaxOA also derives MIN/MAX sequences (§4.2): covering
   windows may overlap freely for semi-algebraic aggregates, so
   ỹ_k = min/max(x̃_{k-∆l}, x̃_{k+∆h}) whenever the two view windows cover
   the query window, i.e. ∆l + ∆h <= lx + hx. *)

exception Not_derivable of string

let not_derivable fmt = Format.kasprintf (fun s -> raise (Not_derivable s)) fmt

let view_params view =
  if not (Seqdata.is_complete view) then
    raise (Not_derivable "MaxOA requires a complete view (header and trailer)");
  match Frame.params (Seqdata.frame view) with
  | None -> raise (Not_derivable "MaxOA requires a sliding-window view")
  | Some (lx, hx) -> (lx, hx)

(* The paper's precondition (§4): the query window must be at most twice
   the view window, ly <= h-1+2·lx for the shared-bound case.  The
   recursion is in fact sound for the slightly wider range ∆l <= lx+h
   (where the compensation window degenerates to a single raw value); we
   enforce the sound range and expose the paper's check separately. *)
let paper_precondition_single ~lx ~h ~ly = ly - lx > 0 && ly <= h - 1 + (2 * lx)

let coverage_factor ~lx ~ly = ly - lx
let overlap_factor ~lx ~h ~dl = 1 + lx + h - dl

(* ---- Single-sided derivation, shared upper bound ---- *)

(* Compensation sequence values over [zlo, zhi] by the ascending
   recursion; z̃_j = 0 for j <= ∆l - h (window entirely before the data). *)
let compensation view ~dl ~dp ~zlo ~zhi =
  let _, h = match Frame.params (Seqdata.frame view) with Some p -> p | None -> assert false in
  let period = dl + dp in
  let z = Array.make (zhi - zlo + 1) 0. in
  let zval j = if j < zlo then 0. else z.(j - zlo) in
  for j = zlo to zhi do
    if j > dl - h then
      z.(j - zlo) <-
        Seqdata.get view (j - dl)
        -. Seqdata.get view (j - period)
        +. zval (j - period)
  done;
  zval

(* ỹ = (ly, h) from x̃ = (lx, h): the recursive form (what an engine with
   internal caches would run). *)
let derive_left view ~ly : Seqdata.t =
  let lx, h = view_params view in
  if Seqdata.agg view <> Agg.Sum then
    raise (Not_derivable "single-sided MaxOA applies to SUM sequences; use derive_minmax");
  let dl = coverage_factor ~lx ~ly in
  if dl = 0 then
    (* identity derivation *)
    Seqdata.make (Seqdata.frame view) Agg.Sum ~n:(Seqdata.length view)
      ~lo:(Seqdata.stored_lo view) (Seqdata.to_array view)
  else begin
    if dl < 0 then
      not_derivable "MaxOA cannot shrink windows (ly=%d < lx=%d)" ly lx;
    if dl > lx + h then
      not_derivable
        "MaxOA precondition violated: ∆l=%d exceeds lx+h=%d (query window more \
         than twice the view window)"
        dl (lx + h);
    let dp = overlap_factor ~lx ~h ~dl in
    let n = Seqdata.length view in
    let frame = Frame.sliding ~l:ly ~h in
    let lo, hi = Seqdata.complete_range frame ~n in
    let zval = compensation view ~dl ~dp ~zlo:(lo - (dl + dp)) ~zhi:hi in
    let values =
      Array.init (hi - lo + 1) (fun i ->
          let k = lo + i in
          Seqdata.get view k +. Seqdata.get view (k - dl) -. zval k)
    in
    Seqdata.make frame Agg.Sum ~n ~lo values
  end

(* The paper's explicit form of the single-sided derivation:
   ỹ_k = x̃_k + Σ_{i>=1} x̃_{k-i(∆l+∆p)} - Σ_{i>=1} x̃_{k-((i+1)∆l+i∆p)}. *)
let value_at_left_explicit view ~ly ~k =
  let lx, h = view_params view in
  let dl = coverage_factor ~lx ~ly in
  if dl <= 0 || dl > lx + h then
    not_derivable "explicit MaxOA: invalid coverage factor ∆l=%d" dl;
  let dp = overlap_factor ~lx ~h ~dl in
  let period = dl + dp in
  let rec sum acc pos =
    if pos <= -h then acc else sum (acc +. Seqdata.get view pos) (pos - period)
  in
  Seqdata.get view k +. sum 0. (k - period) -. sum 0. (k - period - dl)

let derive_left_explicit view ~ly : Seqdata.t =
  let _, h = view_params view in
  let n = Seqdata.length view in
  let frame = Frame.sliding ~l:ly ~h in
  let lo, hi = Seqdata.complete_range frame ~n in
  let values =
    Array.init (hi - lo + 1) (fun i -> value_at_left_explicit view ~ly ~k:(lo + i))
  in
  Seqdata.make frame Agg.Sum ~n ~lo values

(* ---- Single-sided derivation, shared lower bound (mirrored) ---- *)

let derive_right view ~hy : Seqdata.t =
  let mirrored = Seqdata.mirror view in
  Seqdata.mirror (derive_left mirrored ~ly:hy)

(* ---- Double-sided derivation (§4.2) ---- *)

let derive view ~ly ~hy : Seqdata.t =
  let lx, hx = view_params view in
  if Seqdata.agg view <> Agg.Sum then
    raise (Not_derivable "double-sided MaxOA applies to SUM sequences; use derive_minmax");
  if ly < lx || hy < hx then
    not_derivable "MaxOA cannot shrink windows ((%d,%d) from (%d,%d))" ly hy lx hx;
  match ly = lx, hy = hx with
  | true, true ->
    Seqdata.make (Seqdata.frame view) Agg.Sum ~n:(Seqdata.length view)
      ~lo:(Seqdata.stored_lo view) (Seqdata.to_array view)
  | false, true -> derive_left view ~ly
  | true, false -> derive_right view ~hy
  | false, false ->
    let yl = derive_left view ~ly in
    let yr = derive_right view ~hy in
    let n = Seqdata.length view in
    let frame = Frame.sliding ~l:ly ~h:hy in
    let lo, hi = Seqdata.complete_range frame ~n in
    let values =
      Array.init (hi - lo + 1) (fun i ->
          let k = lo + i in
          Seqdata.get yl k +. Seqdata.get yr k -. Seqdata.get view k)
    in
    Seqdata.make frame Agg.Sum ~n ~lo values

(* ---- MIN/MAX derivation (§4.2) ---- *)

let minmax_coverage ~lx ~hx ~ly ~hy =
  let dl = ly - lx and dh = hy - hx in
  dl >= 0 && dh >= 0 && dl + dh <= lx + hx

let derive_minmax view ~ly ~hy : Seqdata.t =
  let lx, hx = view_params view in
  let agg = Seqdata.agg view in
  (match agg with
   | Agg.Min | Agg.Max -> ()
   | Agg.Sum -> raise (Not_derivable "derive_minmax applies to MIN/MAX sequences"));
  if not (minmax_coverage ~lx ~hx ~ly ~hy) then
    not_derivable
      "MIN/MAX coverage violated: need 0 <= ∆l, 0 <= ∆h and ∆l+∆h <= lx+hx \
       ((%d,%d) from (%d,%d))"
      ly hy lx hx;
  let dl = ly - lx and dh = hy - hx in
  let n = Seqdata.length view in
  let frame = Frame.sliding ~l:ly ~h:hy in
  let lo, hi = Seqdata.complete_range frame ~n in
  let values =
    Array.init (hi - lo + 1) (fun i ->
        let k = lo + i in
        Agg.combine agg (Seqdata.get view (k - dl)) (Seqdata.get view (k + dh)))
  in
  Seqdata.make frame agg ~n ~lo values
