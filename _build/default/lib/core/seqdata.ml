(* Materialized sequence data (paper §2.1, §3.2).

   Raw data values x_i exist for 1 <= i <= n and are zero for other i
   (SUM semantics; MIN/MAX clamp instead, see {!Agg}).

   A materialized sequence stores the values x̃_k of a reporting function
   over the raw data.  A *complete* simple sequence (§3.2) additionally
   carries its header (positions -h+1 .. 0) and trailer (n+1 .. n+l):
   exactly the out-of-range positions whose windows still overlap the raw
   data.  We store the full complete range, so [get] returns the correct
   value at *every* integer position:

   - sliding (l, h): stored range [1-h, n+l], zero outside;
   - cumulative:     stored range [1, n]; x̃_k = 0 for k < 1 and
                     x̃_k = x̃_n for k > n (the running total saturates). *)

type raw = {
  n : int;
  data : float array; (* data.(i-1) = x_i *)
}

let raw_of_array data = { n = Array.length data; data }
let raw_of_list l = raw_of_array (Array.of_list l)
let raw_length r = r.n

let raw_get r i = if i < 1 || i > r.n then 0. else r.data.(i - 1)

let raw_to_array r = Array.copy r.data

(* Raw-data editing used by the maintenance rules (§2.3). *)
let raw_update r ~k ~value =
  if k < 1 || k > r.n then invalid_arg "Seqdata.raw_update: position out of range";
  let data = Array.copy r.data in
  data.(k - 1) <- value;
  { r with data }

let raw_insert r ~k ~value =
  if k < 1 || k > r.n + 1 then invalid_arg "Seqdata.raw_insert: position out of range";
  let data = Array.make (r.n + 1) 0. in
  Array.blit r.data 0 data 0 (k - 1);
  data.(k - 1) <- value;
  Array.blit r.data (k - 1) data k (r.n - k + 1);
  { n = r.n + 1; data }

let raw_delete r ~k =
  if k < 1 || k > r.n then invalid_arg "Seqdata.raw_delete: position out of range";
  let data = Array.make (r.n - 1) 0. in
  Array.blit r.data 0 data 0 (k - 1);
  Array.blit r.data k data (k - 1) (r.n - k);
  { n = r.n - 1; data }

(* ---- Materialized sequences ---- *)

type t = {
  frame : Frame.t;
  agg : Agg.t;
  n : int;           (* cardinality of the underlying raw data *)
  lo : int;          (* first stored position *)
  values : float array; (* values.(k - lo) = x̃_k *)
}

let frame t = t.frame
let agg t = t.agg
let length t = t.n
let stored_lo t = t.lo
let stored_hi t = t.lo + Array.length t.values - 1

(* The stored range of a complete sequence. *)
let complete_range frame ~n =
  match frame with
  | Frame.Cumulative -> (1, n)
  | Frame.Sliding { l; h } -> (1 - h, n + l)

let make frame agg ~n ~lo values =
  let explo, exphi = complete_range frame ~n in
  if lo <> explo || lo + Array.length values - 1 <> exphi then
    invalid_arg "Seqdata.make: values do not cover the complete range";
  { frame; agg; n; lo; values }

let get t k =
  let hi = stored_hi t in
  if k >= t.lo && k <= hi then t.values.(k - t.lo)
  else
    let empty = Array.length t.values = 0 in
    match t.frame, t.agg with
    | Frame.Cumulative, Agg.Sum ->
      if k < t.lo || empty then 0. else t.values.(hi - t.lo)
    | Frame.Cumulative, (Agg.Min | Agg.Max) ->
      if k < t.lo || empty then Agg.absent else t.values.(hi - t.lo)
    | Frame.Sliding _, Agg.Sum -> 0.
    | Frame.Sliding _, (Agg.Min | Agg.Max) -> Agg.absent

(* All stored values, ascending by position. *)
let to_array t = Array.copy t.values

(* In-place mutation of a stored value; used by the O(w) maintenance fast
   path.  The position must lie in the stored range. *)
let set_value t k v =
  if k < t.lo || k > stored_hi t then
    invalid_arg "Seqdata.set_value: position outside the stored range";
  t.values.(k - t.lo) <- v

(* Values at positions 1..n only (without header/trailer). *)
let body t = Array.init t.n (fun i -> get t (i + 1))

(* Header (positions below 1) and trailer (positions above n). *)
let header t = Array.init (max 0 (1 - t.lo)) (fun i -> t.values.(i))
let trailer t =
  let hi = stored_hi t in
  Array.init (max 0 (hi - t.n)) (fun i -> get t (t.n + 1 + i))

let is_complete t =
  let explo, exphi = complete_range t.frame ~n:t.n in
  t.lo = explo && stored_hi t = exphi

(* Mirror a sequence around the centre of [1, n]: position p becomes
   n+1-p; a sliding (l, h) sequence becomes a sliding (h, l) sequence over
   the mirrored raw data.  Used to derive the right-sided MaxOA variant
   from the left-sided one. *)
let mirror t =
  match t.frame with
  | Frame.Cumulative -> invalid_arg "Seqdata.mirror: only sliding sequences"
  | Frame.Sliding { l; h } ->
    let len = Array.length t.values in
    let values = Array.init len (fun i -> t.values.(len - 1 - i)) in
    { frame = Frame.sliding ~l:h ~h:l; agg = t.agg; n = t.n; lo = 1 - l; values }

let mirror_raw (r : raw) : raw =
  { r with data = Array.init r.n (fun i -> r.data.(r.n - 1 - i)) }

(* Two sequences are equal when their frames, aggregates and stored values
   agree (within [eps] per value, NaN equal to NaN). *)
let equal ?(eps = 1e-9) a b =
  Frame.equal a.frame b.frame && a.agg = b.agg && a.n = b.n && a.lo = b.lo
  && Array.length a.values = Array.length b.values
  && Array.for_all2
       (fun x y ->
         (Float.is_nan x && Float.is_nan y) || Float.abs (x -. y) <= eps)
       a.values b.values

let pp ppf t =
  Format.fprintf ppf "%s %s n=%d [%d..%d]:" (Agg.name t.agg)
    (Frame.to_string t.frame) t.n t.lo (stored_hi t);
  Array.iteri
    (fun i v -> Format.fprintf ppf " %d:%g" (t.lo + i) v)
    t.values
