(** Reconstructing raw data values from materialized sequence views
    (paper §3.1 for cumulative views, §3.2 for sliding views).

    The workhorse is the telescoping identity behind the paper's explicit
    forms: for a complete sliding SUM sequence (l, h) with window size
    [w = 1+l+h], [Σ_(i>=0) x~_(c-i·w) = C_(c+h)] where [C_j] is the raw
    prefix sum.  Every derivation in §3-§6 is a difference of two [C]
    values. *)

(** [prefix view] is the prefix-sum function [j ↦ C_j] of the raw data as
    reconstructed from the view in one O(n) telescoping pass; [C] is
    clamped ([0] below [0], [C_n] above [n]).
    @raise Invalid_argument
      on MIN/MAX views (they do not determine raw values) or incomplete
      views. *)
val prefix : Seqdata.t -> int -> float

(** Reconstruct all raw values: [x_k = C_k - C_(k-1)], O(n) total. *)
val raw_all : Seqdata.t -> Seqdata.raw

(** §3.1 pointwise rule on a cumulative view: [x_k = x~_k - x~_(k-1)]. *)
val raw_from_cumulative : Seqdata.t -> k:int -> float

(** §3.2 pointwise explicit form on a complete sliding view, with the
    paper's [i_up] cut-off: O(k/w) view lookups. *)
val raw_from_sliding : Seqdata.t -> k:int -> float

(** Dispatch between the two pointwise rules on the view's frame. *)
val raw_value : Seqdata.t -> k:int -> float
