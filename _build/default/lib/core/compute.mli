(** Computing sequence values from raw data (paper §2.2).

    All constructors return {e complete} sequences (header and trailer
    included, §3.2). *)

(** The explicit form: [W(k)+1] operations per position (O(n·w) for
    sliding windows, O(n²) for cumulative ones). *)
val naive : ?agg:Agg.t -> Frame.t -> Seqdata.raw -> Seqdata.t

(** The paper's pipelined strategy: the recursion
    [x~_k = x~_(k-1) + x_(k+h) - x_(k-l-1)] for sliding SUM windows
    (three operations per position independent of the window size, cache
    of w+2 values) and a running accumulator for cumulative frames.
    MIN/MAX sliding windows use a monotonic deque, O(n) total. *)
val pipelined : ?agg:Agg.t -> Frame.t -> Seqdata.raw -> Seqdata.t

(** The default (efficient) strategy; currently {!pipelined}. *)
val sequence : ?agg:Agg.t -> Frame.t -> Seqdata.raw -> Seqdata.t

(** Prefix sums [C_j = x_1 + ... + x_j] for [j] in [0, n]. *)
val prefix_sums : Seqdata.raw -> float array
