(* Window frames of simple sequences (paper §2.1).

   - [Cumulative]: wL(k) = 0, wH(k) = k — year-to-date style windows.
   - [Sliding (l, h)]: wL(k) = k - l, wH(k) = k + h with constant l, h ≥ 0.

   Unlike the paper we also allow l + h = 0 (the identity window), which
   is convenient as a degenerate case of derivation. *)

type t =
  | Cumulative
  | Sliding of { l : int; h : int }

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let cumulative = Cumulative

let sliding ~l ~h =
  if l < 0 || h < 0 then invalid "sliding window (%d,%d): l and h must be >= 0" l h;
  Sliding { l; h }

let is_cumulative = function Cumulative -> true | Sliding _ -> false

(* Window size W(k); constant for sliding windows, position-dependent for
   cumulative ones. *)
let size_at t ~k =
  match t with
  | Cumulative -> k
  | Sliding { l; h } -> 1 + l + h

let sliding_size = function
  | Cumulative -> None
  | Sliding { l; h } -> Some (1 + l + h)

(* Operational scope [wL(k), wH(k)] of position k. *)
let bounds t ~k =
  match t with
  | Cumulative -> (min 1 k, k)
  | Sliding { l; h } -> (k - l, k + h)

let params = function
  | Cumulative -> None
  | Sliding { l; h } -> Some (l, h)

let equal (a : t) (b : t) = a = b

let to_string = function
  | Cumulative -> "cumulative"
  | Sliding { l; h } -> Printf.sprintf "sliding(%d,%d)" l h

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* SQL frame clause for this window shape. *)
let to_sql = function
  | Cumulative -> "ROWS UNBOUNDED PRECEDING"
  | Sliding { l = 0; h = 0 } -> "ROWS BETWEEN CURRENT ROW AND CURRENT ROW"
  | Sliding { l; h = 0 } -> Printf.sprintf "ROWS BETWEEN %d PRECEDING AND CURRENT ROW" l
  | Sliding { l = 0; h } -> Printf.sprintf "ROWS BETWEEN CURRENT ROW AND %d FOLLOWING" h
  | Sliding { l; h } -> Printf.sprintf "ROWS BETWEEN %d PRECEDING AND %d FOLLOWING" l h
