(* Computing sequence values from raw data (paper §2.2).

   - [naive]: the explicit form, W(k)+1 operations per position.
   - [pipelined]: the recursion x̃_k = x̃_{k-1} + x_{k+h} - x_{k-l-1}
     (sliding) resp. x̃_k = x̃_{k-1} + x_k (cumulative): three operations
     per position independent of window size, with a cache of w+2 values.
   - MIN/MAX sliding windows use a monotonic deque (O(n) total), since the
     recursion requires an invertible aggregate.

   All constructors return *complete* sequences (§3.2): header and trailer
   positions included. *)

let compute_range frame ~n = Seqdata.complete_range frame ~n

let naive ?(agg = Agg.Sum) frame (raw : Seqdata.raw) : Seqdata.t =
  let n = Seqdata.raw_length raw in
  let lo, hi = compute_range frame ~n in
  let values =
    Array.init (hi - lo + 1) (fun i ->
        let k = lo + i in
        let wlo, whi = Frame.bounds frame ~k in
        match agg with
        | Agg.Sum ->
          (* zero-extension: clamping to [1, n] is equivalent and cheaper *)
          Agg.of_span Agg.Sum (Seqdata.raw_get raw) ~lo:(max 1 wlo) ~hi:(min n whi)
        | Agg.Min | Agg.Max ->
          Agg.of_span agg (Seqdata.raw_get raw) ~lo:(max 1 wlo) ~hi:(min n whi))
  in
  Seqdata.make frame agg ~n ~lo values

let pipelined_sum frame (raw : Seqdata.raw) : Seqdata.t =
  let n = Seqdata.raw_length raw in
  let lo, hi = compute_range frame ~n in
  let values = Array.make (hi - lo + 1) 0. in
  (match frame with
   | Frame.Cumulative ->
     let acc = ref 0. in
     for k = lo to hi do
       acc := !acc +. Seqdata.raw_get raw k;
       values.(k - lo) <- !acc
     done
   | Frame.Sliding { l; h } ->
     (* x̃_{lo-1} would be a sum over raw positions < 1, i.e. 0. *)
     let prev = ref 0. in
     for k = lo to hi do
       let v = !prev +. Seqdata.raw_get raw (k + h) -. Seqdata.raw_get raw (k - l - 1) in
       values.(k - lo) <- v;
       prev := v
     done);
  Seqdata.make frame Agg.Sum ~n ~lo values

(* Sliding MIN/MAX by monotonic deque over the clamped window [k-l, k+h] ∩
   [1, n]; cumulative MIN/MAX by a running extremum. *)
let pipelined_extremum agg frame (raw : Seqdata.raw) : Seqdata.t =
  let n = Seqdata.raw_length raw in
  let lo, hi = compute_range frame ~n in
  let values = Array.make (hi - lo + 1) Agg.absent in
  (match frame with
   | Frame.Cumulative ->
     let acc = ref Agg.absent in
     for k = 1 to n do
       acc := Agg.combine agg !acc (Seqdata.raw_get raw k);
       values.(k - lo) <- !acc
     done
   | Frame.Sliding { l; h } ->
     let better a b =
       match agg with
       | Agg.Min -> a <= b
       | Agg.Max -> a >= b
       | Agg.Sum -> assert false
     in
     let dq = Array.make (n + 1) 0 in
     let front = ref 0 and back = ref 0 in
     let pushed = ref 1 in
     for k = lo to hi do
       let wlo = max 1 (k - l) and whi = min n (k + h) in
       while !pushed <= whi do
         let v = Seqdata.raw_get raw !pushed in
         while !back > !front && better v (Seqdata.raw_get raw dq.(!back - 1)) do
           decr back
         done;
         dq.(!back) <- !pushed;
         incr back;
         incr pushed
       done;
       while !back > !front && dq.(!front) < wlo do
         incr front
       done;
       if whi >= wlo && !back > !front then
         values.(k - lo) <- Seqdata.raw_get raw dq.(!front)
     done);
  Seqdata.make frame agg ~n ~lo values

let pipelined ?(agg = Agg.Sum) frame raw : Seqdata.t =
  match agg with
  | Agg.Sum -> pipelined_sum frame raw
  | Agg.Min | Agg.Max -> pipelined_extremum agg frame raw

(* Default entry point: the efficient strategy. *)
let sequence ?(agg = Agg.Sum) frame raw = pipelined ~agg frame raw

(* Prefix sums C_j = Σ_{i<=j} x_i for j in [0, n]; the cumulative sequence
   in array form, used by the derivation fast paths. *)
let prefix_sums (raw : Seqdata.raw) : float array =
  let n = Seqdata.raw_length raw in
  let c = Array.make (n + 1) 0. in
  for i = 1 to n do
    c.(i) <- c.(i - 1) +. Seqdata.raw_get raw i
  done;
  c
