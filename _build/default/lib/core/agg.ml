(* Aggregation functions at the sequence level (paper §2.1, FA).

   The paper emphasizes SUM — COUNT is trivial (a closed form of the
   position) and AVG = SUM / COUNT — and treats the semi-algebraic MIN and
   MAX separately, because only MaxOA can derive them (§4.2, §7).

   Sequence values are floats.  SUM-sequences zero-extend the raw data
   outside [1, n]; MIN/MAX-sequences clamp their windows to existing data
   and use [absent] (NaN) for empty windows. *)

type t =
  | Sum
  | Min
  | Max

let name = function Sum -> "SUM" | Min -> "MIN" | Max -> "MAX"

let invertible = function Sum -> true | Min | Max -> false

(* Marker for "no value" in MIN/MAX sequences. *)
let absent = Float.nan
let is_absent v = Float.is_nan v

(* Combine two window results into the result of the union window.
   Correct for MIN/MAX whenever the windows cover the union (overlaps are
   harmless); for SUM only correct on disjoint windows. *)
let combine t a b =
  if is_absent a then b
  else if is_absent b then a
  else
    match t with
    | Sum -> a +. b
    | Min -> Float.min a b
    | Max -> Float.max a b

(* Fold a window of raw values: for SUM, [span] is taken as-is (raw data
   is zero-extended by the caller); for MIN/MAX an empty span is absent. *)
let of_span t (get : int -> float) ~lo ~hi =
  if hi < lo then (match t with Sum -> 0. | Min | Max -> absent)
  else begin
    let acc = ref (get lo) in
    for i = lo + 1 to hi do
      acc :=
        (match t with
         | Sum -> !acc +. get i
         | Min -> Float.min !acc (get i)
         | Max -> Float.max !acc (get i))
    done;
    !acc
  end

(* COUNT has a closed form: the number of raw positions inside the window
   clamped to [1, n] (paper §2.1: "COUNT is trivial"). *)
let count_at frame ~n ~k =
  let lo, hi = Frame.bounds frame ~k in
  let lo = max 1 lo and hi = min n hi in
  max 0 (hi - lo + 1)

(* AVG is derived: SUM / COUNT, absent on empty windows. *)
let avg_of_sum frame ~n ~k sum =
  let c = count_at frame ~n ~k in
  if c = 0 then absent else sum /. float_of_int c
