(* Derivability of sequence queries from materialized sequence views
   (paper §3): the dispatcher that picks an applicable algorithm for a
   (view frame, query frame, aggregate) combination, plus the direct
   cumulative-view rules of §3.1.

   The decision matrix (paper §3-§5, §7):

     view \ query     cumulative         sliding (ly,hy)
     ---------------  -----------------  -------------------------------
     cumulative, SUM  copy               x̃_{k+h} - x̃_{k-l-1}     (§3.1)
     sliding, SUM     prefix telescope   MinOA (always) or
                      (§3.2)             MaxOA (if windows grow,  §4/§5)
     sliding, MIN/MAX not derivable      MaxOA coverage rule      (§4.2)
     cumul., MIN/MAX  copy               not derivable *)

type strategy =
  | Copy
  | From_cumulative
  | Min_overlap  (* MinOA *)
  | Max_overlap  (* MaxOA *)
  | Max_overlap_minmax

let strategy_name = function
  | Copy -> "copy"
  | From_cumulative -> "cumulative-difference"
  | Min_overlap -> "MinOA"
  | Max_overlap -> "MaxOA"
  | Max_overlap_minmax -> "MaxOA-minmax"

exception Not_derivable = Maxoa.Not_derivable

(* ---- §3.1: deriving from a cumulative view ---- *)

let sliding_from_cumulative view ~l ~h : Seqdata.t =
  (match Seqdata.frame view, Seqdata.agg view with
   | Frame.Cumulative, Agg.Sum -> ()
   | _ -> raise (Not_derivable "expected a cumulative SUM view"));
  let n = Seqdata.length view in
  let frame = Frame.sliding ~l ~h in
  let lo, hi = Seqdata.complete_range frame ~n in
  let values =
    Array.init (hi - lo + 1) (fun i ->
        let k = lo + i in
        Seqdata.get view (k + h) -. Seqdata.get view (k - l - 1))
  in
  Seqdata.make frame Agg.Sum ~n ~lo values

let cumulative_from_sliding view : Seqdata.t =
  let c = Reconstruct.prefix view in
  let n = Seqdata.length view in
  Seqdata.make Frame.Cumulative Agg.Sum ~n ~lo:1 (Array.init n (fun i -> c (i + 1)))

(* ---- Applicability without running the derivation ---- *)

let applicable_strategies ~view_frame ~view_agg ~query_frame : strategy list =
  if Frame.equal view_frame query_frame then [ Copy ]
  else
    match view_frame, view_agg, query_frame with
    | Frame.Cumulative, Agg.Sum, Frame.Sliding _ -> [ From_cumulative ]
    | Frame.Sliding _, Agg.Sum, Frame.Cumulative -> [ Min_overlap ]
    | Frame.Sliding { l = lx; h = hx }, Agg.Sum, Frame.Sliding { l = ly; h = hy } ->
      let maxoa_ok =
        ly >= lx && hy >= hx
        && (ly = lx || ly - lx <= lx + hx)   (* left pass sound range *)
        && (hy = hx || hy - hx <= hx + lx)   (* right (mirrored) pass *)
      in
      Min_overlap :: (if maxoa_ok then [ Max_overlap ] else [])
    | Frame.Sliding { l = lx; h = hx }, (Agg.Min | Agg.Max), Frame.Sliding { l = ly; h = hy }
      when Maxoa.minmax_coverage ~lx ~hx ~ly ~hy -> [ Max_overlap_minmax ]
    | _ -> []

let derivable ~view_frame ~view_agg ~query_frame =
  applicable_strategies ~view_frame ~view_agg ~query_frame <> []

(* ---- Running a chosen strategy ---- *)

let run strategy view query_frame : Seqdata.t =
  match strategy, query_frame with
  | Copy, _ ->
    if not (Frame.equal (Seqdata.frame view) query_frame) then
      raise (Not_derivable "copy strategy requires identical frames");
    view
  | From_cumulative, Frame.Sliding { l; h } -> sliding_from_cumulative view ~l ~h
  | Min_overlap, Frame.Cumulative -> cumulative_from_sliding view
  | Min_overlap, Frame.Sliding { l; h } -> Minoa.derive view ~l ~h
  | Max_overlap, Frame.Sliding { l; h } -> Maxoa.derive view ~ly:l ~hy:h
  | Max_overlap_minmax, Frame.Sliding { l; h } -> Maxoa.derive_minmax view ~ly:l ~hy:h
  | (From_cumulative | Max_overlap | Max_overlap_minmax), Frame.Cumulative ->
    raise (Not_derivable "strategy does not produce cumulative sequences")

(* Derive with the first applicable strategy. *)
let derive view query_frame : Seqdata.t =
  match
    applicable_strategies ~view_frame:(Seqdata.frame view)
      ~view_agg:(Seqdata.agg view) ~query_frame
  with
  | [] ->
    raise
      (Not_derivable
         (Printf.sprintf "no strategy derives %s %s from %s %s"
            (Agg.name (Seqdata.agg view))
            (Frame.to_string query_frame)
            (Agg.name (Seqdata.agg view))
            (Frame.to_string (Seqdata.frame view))))
  | s :: _ -> run s view query_frame
