(** Reporting sequences (paper §6): simple sequences extended by a
    partitioning scheme and a multi-column ordering scheme.

    A reporting view holds one complete simple sequence per partition,
    all sharing the same frame, aggregate and ordering space.  It is a
    {e complete reporting function} when every partition sequence is
    complete — the prerequisite for partitioning reduction (§6.2). *)

type partition_key = string list

type t = {
  agg : Agg.t;
  frame : Frame.t;
  space : Position.t;
  partitions : (partition_key * Seqdata.t) list;  (** in partition order *)
}

exception Not_derivable of string

val agg : t -> Agg.t
val frame : t -> Frame.t
val space : t -> Position.t
val partitions : t -> (partition_key * Seqdata.t) list
val partition_keys : t -> partition_key list
val find_partition : t -> partition_key -> Seqdata.t option

(** All partition sequences complete (Def. §6.2). *)
val is_complete : t -> bool

(** Compute a reporting view from per-partition raw data (one value per
    ordering-space position).
    @raise Not_derivable if a partition does not cover the space. *)
val compute :
  ?agg:Agg.t -> Frame.t -> Position.t -> (partition_key * Seqdata.raw) list -> t

(** Ordering reduction (Lemma §6.1): collapse the trailing ordering
    columns — values sharing a coarse prefix are summed — and compute the
    [target_frame] sequence over the reduced space, using only the view's
    data (via reconstructed prefix sums).
    @raise Not_derivable
      on non-SUM views or when [keep] is not a non-empty strict prefix. *)
val ordering_reduction : t -> keep:int -> target_frame:Frame.t -> t

(** Partitioning reduction (Lemma §6.2): merge consecutive partitions
    whose keys map to the same [group] key.  Interior positions keep
    their original values; positions near partition boundaries combine
    header/trailer information of neighbouring partitions — which is why
    the view must be complete.
    @raise Not_derivable if the view is not complete. *)
val partitioning_reduction : t -> group:(partition_key -> partition_key) -> t

(** Reference implementation for testing: recompute the merged sequences
    from concatenated raw data. *)
val recompute_merged :
  ?agg:Agg.t ->
  Frame.t ->
  (partition_key * Seqdata.raw) list ->
  group:(partition_key -> partition_key) ->
  (partition_key * Seqdata.t) list
