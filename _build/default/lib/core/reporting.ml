(* Reporting sequences (paper §6): simple sequences extended by a
   partitioning scheme and a multi-column ordering scheme.

   A reporting view holds one complete simple sequence per partition, all
   sharing the same frame, aggregate and ordering space.  A view is a
   *complete reporting function* (paper Def. §6.2) when every partition
   sequence is complete — the prerequisite for partitioning reduction.

   Two derivation operations:
   - [ordering_reduction] (Lemma §6.1): collapse the j right-most ordering
     columns; the prefix of the ordering scheme must be preserved.
   - [partitioning_reduction] (Lemma §6.2): drop partition attributes,
     merging consecutive partitions into longer sequences; requires the
     view to be complete. *)

type partition_key = string list

type t = {
  agg : Agg.t;
  frame : Frame.t;
  space : Position.t;
  partitions : (partition_key * Seqdata.t) list; (* in partition order *)
}

exception Not_derivable of string

let not_derivable fmt = Format.kasprintf (fun s -> raise (Not_derivable s)) fmt

let agg t = t.agg
let frame t = t.frame
let space t = t.space
let partitions t = t.partitions

let partition_keys t = List.map fst t.partitions

let find_partition t key = List.assoc_opt key t.partitions

let is_complete t =
  List.for_all (fun (_, s) -> Seqdata.is_complete s) t.partitions

(* Build a reporting view by computing each partition's sequence from its
   raw data (in ordering-space linearization). *)
let compute ?(agg = Agg.Sum) frame space (parts : (partition_key * Seqdata.raw) list) :
    t =
  List.iter
    (fun (_, raw) ->
      if Seqdata.raw_length raw <> Position.size space then
        not_derivable "partition data must cover the ordering space (%d positions)"
          (Position.size space))
    parts;
  {
    agg;
    frame;
    space;
    partitions = List.map (fun (key, raw) -> (key, Compute.sequence ~agg frame raw)) parts;
  }

(* ---- Ordering reduction (Lemma §6.1) ----

   Collapsing the trailing ordering columns sums all fine values sharing a
   coarse prefix; the coarse sequence (with a coarse frame) is derived
   from the fine view through the reconstructed prefix sums: the coarse
   prefix sum at coarse position p is C(last_of_prefix p). *)

let ordering_reduction t ~keep ~target_frame : t =
  if t.agg <> Agg.Sum then
    not_derivable "ordering reduction requires SUM sequences";
  if keep < 1 || keep >= Position.arity t.space then
    not_derivable "ordering reduction must keep a non-empty strict prefix";
  let red = Position.reduced t.space ~keep in
  let coarse_n = Position.size red in
  let reduce_partition (key, seq) =
    let c = Reconstruct.prefix seq in
    let coarse_c p =
      if p <= 0 then 0.
      else if p >= coarse_n then c (Seqdata.length seq)
      else c (snd (Position.group_range t.space ~keep p))
    in
    let lo, hi = Seqdata.complete_range target_frame ~n:coarse_n in
    let values =
      Array.init (hi - lo + 1) (fun i ->
          let k = lo + i in
          let wlo, whi = Frame.bounds target_frame ~k in
          coarse_c whi -. coarse_c (wlo - 1))
    in
    (key, Seqdata.make target_frame Agg.Sum ~n:coarse_n ~lo values)
  in
  { t with frame = target_frame; space = red; partitions = List.map reduce_partition t.partitions }

(* ---- Partitioning reduction (Lemma §6.2) ----

   [group key] maps each partition key to its merged key; consecutive
   partitions with equal merged keys concatenate into one long sequence.
   Interior positions keep their original values; positions within a
   window of a partition boundary combine header/trailer information of
   the neighbouring partitions — which is exactly why the paper requires
   complete reporting functions. *)

(* Per-partition prefix-sum closures and running extrema used to evaluate
   windows that cross partition boundaries. *)
type part_info = {
  len : int;
  csum : (int -> float) option;        (* SUM views *)
  pre_ext : float array option;        (* MIN/MAX: extremum of raw [1..q], index q *)
  suf_ext : float array option;        (* MIN/MAX: extremum of raw [q..n], index q *)
}

let part_info_of agg seq =
  let n = Seqdata.length seq in
  match agg with
  | Agg.Sum -> { len = n; csum = Some (Reconstruct.prefix seq); pre_ext = None; suf_ext = None }
  | Agg.Min | Agg.Max ->
    (match Frame.params (Seqdata.frame seq) with
     | None ->
       (* Cumulative MIN/MAX: the body values already are the prefix
          extrema, and merged cumulative windows only ever need prefixes. *)
       let pre = Array.make (n + 1) Agg.absent in
       for q = 1 to n do
         pre.(q) <- Seqdata.get seq q
       done;
       { len = n; csum = None; pre_ext = Some pre; suf_ext = Some (Array.make (n + 2) Agg.absent) }
     | Some (l, h) ->
       (* Extremum of the raw prefix [1..q]: fold of sequence values at
          positions 1-h .. q-h (their clamped windows tile exactly [1..q]);
          dually for suffixes. *)
       let pre = Array.make (n + 1) Agg.absent in
       for q = 1 to n do
         pre.(q) <- Agg.combine agg pre.(q - 1) (Seqdata.get seq (q - h))
       done;
       let suf = Array.make (n + 2) Agg.absent in
       for q = n downto 1 do
         suf.(q) <- Agg.combine agg suf.(q + 1) (Seqdata.get seq (q + l))
       done;
       { len = n; csum = None; pre_ext = Some pre; suf_ext = Some suf })

(* Aggregate of raw positions [a..b] (1-based, clamped) of one partition. *)
let segment_value agg info ~a ~b =
  let a = max 1 a and b = min info.len b in
  if b < a then (match agg with Agg.Sum -> 0. | _ -> Agg.absent)
  else
    match agg with
    | Agg.Sum ->
      let c = Option.get info.csum in
      c b -. c (a - 1)
    | Agg.Min | Agg.Max ->
      if a = 1 then (Option.get info.pre_ext).(b)
      else if b = info.len then (Option.get info.suf_ext).(a)
      else
        (* interior segments only occur when the window lies inside one
           partition, where the original value is used instead *)
        not_derivable "interior MIN/MAX segment should be answered by the view itself"

let partitioning_reduction t ~group : t =
  if not (is_complete t) then
    not_derivable
      "partitioning reduction requires a complete reporting function (header \
       and trailer per partition)";
  let frame = t.frame in
  let l, h =
    match Frame.params frame with
    | Some p -> p
    | None ->
      (* Cumulative = sliding with unbounded l; treat via SUM prefix sums. *)
      (max_int / 4, 0)
  in
  (* Group consecutive partitions. *)
  let groups =
    List.fold_left
      (fun acc (key, seq) ->
        let gkey = group key in
        match acc with
        | (k, seqs) :: rest when k = gkey -> (k, seq :: seqs) :: rest
        | _ -> (gkey, [ seq ]) :: acc)
      [] t.partitions
    |> List.rev_map (fun (k, seqs) -> (k, List.rev seqs))
  in
  let merge (gkey, seqs) =
    let infos = List.map (part_info_of t.agg) seqs in
    let seqs = Array.of_list seqs and infos = Array.of_list infos in
    let nparts = Array.length seqs in
    let offsets = Array.make (nparts + 1) 0 in
    for i = 0 to nparts - 1 do
      offsets.(i + 1) <- offsets.(i) + infos.(i).len
    done;
    let total = offsets.(nparts) in
    (* partition containing global raw position g (1-based); -1/nparts
       outside *)
    let part_of g =
      if g < 1 then -1
      else if g > total then nparts
      else begin
        let rec go i = if offsets.(i + 1) >= g then i else go (i + 1) in
        go 0
      end
    in
    let value_at k =
      let wlo = if Frame.is_cumulative frame then 1 else k - l in
      let whi = if Frame.is_cumulative frame then k else k + h in
      let wlo = max 1 wlo and whi = min total whi in
      if whi < wlo then (match t.agg with Agg.Sum -> 0. | _ -> Agg.absent)
      else begin
        let plo = part_of wlo and phi = part_of whi in
        if plo = phi && not (Frame.is_cumulative frame) then
          (* window inside one partition: its own (interior or header or
             trailer) value is directly available *)
          Seqdata.get seqs.(plo) (k - offsets.(plo))
        else begin
          let acc = ref (match t.agg with Agg.Sum -> 0. | _ -> Agg.absent) in
          for p = plo to phi do
            let a = wlo - offsets.(p) and b = whi - offsets.(p) in
            acc := Agg.combine t.agg !acc (segment_value t.agg infos.(p) ~a ~b)
          done;
          !acc
        end
      end
    in
    let lo, hi = Seqdata.complete_range frame ~n:total in
    let values = Array.init (hi - lo + 1) (fun i -> value_at (lo + i)) in
    (gkey, Seqdata.make frame t.agg ~n:total ~lo values)
  in
  { t with partitions = List.map merge groups }

(* Full recomputation from raw partitions, for testing the reductions. *)
let recompute_merged ?(agg = Agg.Sum) frame (parts : (partition_key * Seqdata.raw) list)
    ~group : (partition_key * Seqdata.t) list =
  let groups =
    List.fold_left
      (fun acc (key, raw) ->
        let gkey = group key in
        match acc with
        | (k, raws) :: rest when k = gkey -> (k, raw :: raws) :: rest
        | _ -> (gkey, [ raw ]) :: acc)
      [] parts
    |> List.rev_map (fun (k, raws) -> (k, List.rev raws))
  in
  List.map
    (fun (gkey, raws) ->
      let data = Array.concat (List.map Seqdata.raw_to_array raws) in
      (gkey, Compute.sequence ~agg frame (Seqdata.raw_of_array data)))
    groups
