(** Materialized sequence data (paper §2.1, §3.2).

    {2 Raw data}

    Raw values [x_i] exist for [1 <= i <= n] and are zero for other [i]
    (the paper's convention for SUM semantics).

    {2 Complete sequences}

    A materialized sequence stores the reporting-function values [x~_k].
    A {e complete} simple sequence (§3.2) also carries its header
    (positions [-h+1 .. 0]) and trailer ([n+1 .. n+l]) — the out-of-range
    positions whose windows still overlap the raw data.  {!get} is total:
    it returns the mathematically correct value at {e every} integer
    position (zero / {!Agg.absent} outside the stored range; cumulative
    sequences saturate at [x~_n] above [n]). *)

(** {1 Raw data} *)

type raw

val raw_of_array : float array -> raw
val raw_of_list : float list -> raw
val raw_length : raw -> int

(** [raw_get r i] is [x_i], zero outside [1, n]. *)
val raw_get : raw -> int -> float

val raw_to_array : raw -> float array

(** Functional edits used by the §2.3 maintenance rules.  Positions are
    1-based; insert shifts positions [>= k] right, delete shifts
    positions [> k] left.
    @raise Invalid_argument if [k] is out of range. *)

val raw_update : raw -> k:int -> value:float -> raw
val raw_insert : raw -> k:int -> value:float -> raw
val raw_delete : raw -> k:int -> raw

(** Mirror the raw data around the centre of [1, n]. *)
val mirror_raw : raw -> raw

(** {1 Materialized sequences} *)

type t

val frame : t -> Frame.t
val agg : t -> Agg.t

(** Cardinality [n] of the underlying raw data. *)
val length : t -> int

val stored_lo : t -> int
val stored_hi : t -> int

(** The stored position range [(lo, hi)] of a complete sequence over [n]
    raw values: [(1-h, n+l)] for sliding frames, [(1, n)] for cumulative
    ones. *)
val complete_range : Frame.t -> n:int -> int * int

(** [make frame agg ~n ~lo values] packs a complete sequence.
    @raise Invalid_argument
      if [lo] and [values] do not cover exactly {!complete_range}. *)
val make : Frame.t -> Agg.t -> n:int -> lo:int -> float array -> t

(** Total accessor: the sequence value at any position. *)
val get : t -> int -> float

(** In-place mutation of a stored value (the O(w) maintenance fast path).
    @raise Invalid_argument if the position is outside the stored range. *)
val set_value : t -> int -> float -> unit

(** All stored values, ascending by position (a copy). *)
val to_array : t -> float array

(** Values at body positions [1..n] only. *)
val body : t -> float array

(** Header (positions below 1) resp. trailer (positions above [n]). *)
val header : t -> float array

val trailer : t -> float array

val is_complete : t -> bool

(** Mirror a sliding sequence around the centre of [1, n]: position [p]
    becomes [n+1-p] and an (l, h) frame becomes (h, l).  Used to obtain
    right-sided MaxOA from the left-sided algorithm.
    @raise Invalid_argument on cumulative sequences. *)
val mirror : t -> t

(** Structural equality within [eps] per value (NaN equal to NaN). *)
val equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
