(** Derivability of sequence queries from materialized sequence views
    (paper §3): decide which algorithm applies to a (view frame, query
    frame, aggregate) combination and run it.

    Decision matrix (paper §3-§5, §7):

    {v
    view \ query      cumulative          sliding (ly,hy)
    ----------------  ------------------  -------------------------------
    cumulative, SUM   copy                x~_(k+h) - x~_(k-l-1)    (§3.1)
    sliding, SUM      prefix telescope    MinOA (always) or
                      (§3.2)              MaxOA (if windows grow,  §4/§5)
    sliding, MIN/MAX  not derivable       MaxOA coverage rule      (§4.2)
    cumul., MIN/MAX   copy                not derivable
    v} *)

type strategy =
  | Copy                 (** identical frames *)
  | From_cumulative      (** §3.1 difference rule *)
  | Min_overlap          (** MinOA, §5 *)
  | Max_overlap          (** MaxOA, §4 *)
  | Max_overlap_minmax   (** MaxOA coverage rule for MIN/MAX, §4.2 *)

val strategy_name : strategy -> string

exception Not_derivable of string

(** §3.1: [y~_k = x~_(k+h) - x~_(k-l-1)] on a cumulative SUM view. *)
val sliding_from_cumulative : Seqdata.t -> l:int -> h:int -> Seqdata.t

(** The cumulative sequence reconstructed from a complete sliding SUM
    view by telescoping. *)
val cumulative_from_sliding : Seqdata.t -> Seqdata.t

(** The strategies able to derive [query_frame] from a view with
    [view_frame]/[view_agg], in preference order; [[]] if underivable. *)
val applicable_strategies :
  view_frame:Frame.t -> view_agg:Agg.t -> query_frame:Frame.t -> strategy list

val derivable : view_frame:Frame.t -> view_agg:Agg.t -> query_frame:Frame.t -> bool

(** Run one strategy.  @raise Not_derivable when it does not apply. *)
val run : strategy -> Seqdata.t -> Frame.t -> Seqdata.t

(** Derive with the first applicable strategy.
    @raise Not_derivable when none applies. *)
val derive : Seqdata.t -> Frame.t -> Seqdata.t
