(* SQL generation of the paper's relational operator patterns.

   These are the "pure relational model" mappings the paper proposes for
   engines without native reporting functionality (Figs. 2, 4, 10, 13):
   they can be applied in query rewrite directly after parsing a query
   exhibiting a reporting function.

   Each derivation pattern is emitted in two flavours, matching the two
   columns of the paper's Table 2:
   - [`Disjunctive]: a single self join with a disjunctive predicate;
   - [`Union]: a UNION ALL of queries with simple (conjunctive)
     predicates, aggregated afterwards.

   MOD is *floored* in our engine, so the residue-class predicates remain
   correct on header/trailer positions (which are <= 0); see DESIGN.md. *)

type variant =
  [ `Disjunctive
  | `Union
  ]

let sprintf = Printf.sprintf

(* ---- The native reporting-function query (Table 1, columns 1/3) ---- *)

let native_window ?(table = "seq") ?(pos = "pos") ?(value = "val") frame =
  sprintf "SELECT %s, SUM(%s) OVER (ORDER BY %s %s) AS val FROM %s" pos value pos
    (Frame.to_sql frame) table

(* ---- Fig. 2: computing a sequence by a self join (Table 1, cols 2/4) ---- *)

let fig2_self_join ?(table = "seq") ?(pos = "pos") ?(value = "val") frame =
  let pred =
    match frame with
    | Frame.Cumulative -> sprintf "s2.%s <= s1.%s" pos pos
    | Frame.Sliding { l; h } ->
      sprintf "s2.%s BETWEEN s1.%s - %d AND s1.%s + %d" pos pos l pos h
  in
  sprintf
    "SELECT s1.%s AS %s, SUM(s2.%s) AS val FROM %s s1, %s s2 WHERE %s GROUP BY s1.%s"
    pos pos value table table pred pos

(* ---- Fig. 4: reconstructing raw values from a cumulative view ---- *)

let fig4_reconstruct ?(table = "matseq") ?(pos = "pos") ?(value = "val") () =
  sprintf
    "SELECT s1.%s AS %s, SUM(CASE WHEN s1.%s = s2.%s THEN s2.%s ELSE (-1) * s2.%s \
     END) AS val FROM %s s1, %s s2 WHERE s2.%s IN (s1.%s - 1, s1.%s) GROUP BY s1.%s"
    pos pos pos pos value value table table pos pos pos pos

(* ---- Shared helpers for the derivation patterns ---- *)

(* Signed term family: all view positions congruent to [anchor] modulo
   [period] that lie at or below [upper]; [anchor]/[upper] are offsets
   relative to s1.pos. *)
type term_family = {
  sign : int;          (* +1 or -1 *)
  anchor_off : int;    (* residue class: s2.pos ≡ s1.pos + anchor_off (mod period) *)
  upper_off : int;     (* range: s2.pos <= s1.pos + upper_off *)
}

(* "s1.pos + off" with the sign folded into the operator; "s1.pos" if 0. *)
let offset_expr ~pos off =
  if off = 0 then sprintf "s1.%s" pos
  else if off > 0 then sprintf "s1.%s + %d" pos off
  else sprintf "s1.%s - %d" pos (-off)

let family_pred ~pos ~period f =
  sprintf "(s2.%s <= %s AND MOD(%s, %d) = MOD(s2.%s, %d))" pos
    (offset_expr ~pos f.upper_off)
    (offset_expr ~pos f.anchor_off)
    period pos period

(* Inner compensation query over the two term families. *)
let inner_query ~table ~pos ~value ~period ~(fams : term_family list) variant =
  let preds = List.map (family_pred ~pos ~period) fams in
  match variant with
  | `Disjunctive ->
    let where = String.concat " OR " preds in
    (* Residue classes of distinct families can coincide (e.g. MinOA with
       ∆l+∆h a multiple of the view window size); emitting one signed CASE
       per family keeps the sum correct in that case too. *)
    let cases =
      List.map2
        (fun f p ->
          if f.sign >= 0 then sprintf "(CASE WHEN %s THEN s2.%s ELSE 0 END)" p value
          else sprintf "(CASE WHEN %s THEN (-1) * s2.%s ELSE 0 END)" p value)
        fams preds
    in
    sprintf
      "SELECT s1.%s AS %s, SUM(%s) AS val FROM %s s1, %s s2 WHERE %s GROUP BY s1.%s"
      pos pos
      (String.concat " + " cases)
      table table where pos
  | `Union ->
    let branches =
      List.map2
        (fun f p ->
          let term =
            if f.sign >= 0 then sprintf "s2.%s" value
            else sprintf "(-1) * s2.%s" value
          in
          sprintf "SELECT s1.%s AS %s, %s AS sval FROM %s s1, %s s2 WHERE %s" pos pos
            term table table p)
        fams preds
    in
    sprintf "SELECT %s, SUM(sval) AS val FROM (%s) u GROUP BY %s" pos
      (String.concat " UNION ALL " branches)
      pos

let outer_query ~table ~pos ~value ~self_term ~inner =
  let expr =
    if self_term then sprintf "s.%s + COALESCE(c.val, 0)" value
    else "COALESCE(c.val, 0)"
  in
  sprintf "SELECT s.%s AS %s, %s AS val FROM %s s LEFT OUTER JOIN (%s) c ON c.%s = s.%s"
    pos pos expr table inner pos pos

(* ---- Fig. 10: MaxOA (single-sided, shared upper bound h) ----

   ỹ_k = x̃_k + Σ_{i>=1} x̃_{k-i(∆l+∆p)} - Σ_{i>=1} x̃_{k-((i+1)∆l+i∆p)}
   with ∆p = 1+lx+h-∆l. *)

let maxoa ?(table = "matseq") ?(pos = "pos") ?(value = "val") ~lx ~h ~ly variant =
  let dl = ly - lx in
  if dl <= 0 || dl > lx + h then
    invalid_arg "Sqlgen.maxoa: need 0 < ly - lx <= lx + h";
  let dp = Maxoa.overlap_factor ~lx ~h ~dl in
  let period = dl + dp in
  let fams =
    [
      { sign = 1; anchor_off = 0; upper_off = -period };
      { sign = -1; anchor_off = -dl; upper_off = -period - dl };
    ]
  in
  let inner = inner_query ~table ~pos ~value ~period ~fams variant in
  outer_query ~table ~pos ~value ~self_term:true ~inner

(* ---- Fig. 13: MinOA ----

   ỹ_k = Σ_{i>=0} x̃_{k+∆h-i·wx} - Σ_{i>=1} x̃_{k-∆l-i·wx}, wx = 1+lx+hx. *)

let minoa ?(table = "matseq") ?(pos = "pos") ?(value = "val") ~lx ~hx ~ly ~hy variant =
  let wx = 1 + lx + hx in
  let dl = ly - lx and dh = hy - hx in
  if dl = 0 && dh = 0 then invalid_arg "Sqlgen.minoa: identity derivation";
  let fams =
    [
      { sign = 1; anchor_off = dh; upper_off = dh };
      { sign = -1; anchor_off = -dl; upper_off = -dl - wx };
    ]
  in
  let inner = inner_query ~table ~pos ~value ~period:wx ~fams variant in
  outer_query ~table ~pos ~value ~self_term:false ~inner
