lib/core/derive.ml: Agg Array Frame Maxoa Minoa Printf Reconstruct Seqdata
