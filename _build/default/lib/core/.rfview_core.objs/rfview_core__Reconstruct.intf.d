lib/core/reconstruct.mli: Seqdata
