lib/core/seqdata.ml: Agg Array Float Format Frame
