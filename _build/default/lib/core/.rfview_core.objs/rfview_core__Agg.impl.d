lib/core/agg.ml: Float Frame
