lib/core/position.mli:
