lib/core/compute.ml: Agg Array Frame Seqdata
