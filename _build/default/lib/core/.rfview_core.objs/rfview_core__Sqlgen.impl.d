lib/core/sqlgen.ml: Frame List Maxoa Printf String
