lib/core/compute.mli: Agg Frame Seqdata
