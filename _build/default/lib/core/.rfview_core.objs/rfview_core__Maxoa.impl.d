lib/core/maxoa.ml: Agg Array Format Frame Seqdata
