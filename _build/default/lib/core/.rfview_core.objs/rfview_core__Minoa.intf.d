lib/core/minoa.mli: Seqdata
