lib/core/minoa.ml: Agg Array Frame Reconstruct Seqdata
