lib/core/sqlgen.mli: Frame
