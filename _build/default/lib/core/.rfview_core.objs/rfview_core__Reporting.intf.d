lib/core/reporting.mli: Agg Frame Position Seqdata
