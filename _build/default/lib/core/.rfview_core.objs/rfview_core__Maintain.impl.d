lib/core/maintain.ml: Agg Array Compute Frame Seqdata
