lib/core/maxoa.mli: Seqdata
