lib/core/maintain.mli: Seqdata
