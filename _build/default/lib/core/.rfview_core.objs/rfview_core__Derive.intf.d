lib/core/derive.mli: Agg Frame Seqdata
