lib/core/position.ml: Array Format
