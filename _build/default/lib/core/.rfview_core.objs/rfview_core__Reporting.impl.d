lib/core/reporting.ml: Agg Array Compute Format Frame List Option Position Reconstruct Seqdata
