lib/core/frame.ml: Format Printf
