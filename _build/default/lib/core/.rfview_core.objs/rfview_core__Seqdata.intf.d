lib/core/seqdata.mli: Agg Format Frame
