lib/core/reconstruct.ml: Agg Array Frame Seqdata
