lib/core/frame.mli: Format
