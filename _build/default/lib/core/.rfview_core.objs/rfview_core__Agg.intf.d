lib/core/agg.mli: Frame
