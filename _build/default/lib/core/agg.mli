(** Aggregation functions at the sequence level (paper §2.1, the [FA] of a
    simple sequence).

    The paper emphasizes SUM — COUNT has a closed form and AVG is
    SUM/COUNT — and treats the semi-algebraic MIN and MAX separately
    because only MaxOA can derive them (§4.2, §7).

    Conventions: sequence values are floats; SUM-sequences zero-extend
    the raw data outside [1, n]; MIN/MAX-sequences clamp windows to
    existing data and mark empty windows with {!absent} (NaN). *)

type t =
  | Sum
  | Min
  | Max

val name : t -> string

(** SUM is invertible (supports the pipelined recursion and MinOA);
    MIN/MAX are not. *)
val invertible : t -> bool

(** The marker for "no value" in MIN/MAX sequences (NaN). *)
val absent : float

val is_absent : float -> bool

(** [combine t a b] merges two window results into the result of the
    union window.  Exact for MIN/MAX whenever the windows cover the
    union (overlaps are harmless); for SUM only on disjoint windows.
    {!absent} operands are ignored. *)
val combine : t -> float -> float -> float

(** [of_span t get ~lo ~hi] folds the aggregate over the raw values at
    positions [lo..hi]; an empty span yields [0.] for SUM and {!absent}
    for MIN/MAX. *)
val of_span : t -> (int -> float) -> lo:int -> hi:int -> float

(** [count_at frame ~n ~k] is the closed form of COUNT: the number of raw
    positions inside the window of [k] clamped to [1, n]. *)
val count_at : Frame.t -> n:int -> k:int -> int

(** [avg_of_sum frame ~n ~k sum] derives AVG from a SUM window value;
    {!absent} on empty windows. *)
val avg_of_sum : Frame.t -> n:int -> k:int -> float -> float
