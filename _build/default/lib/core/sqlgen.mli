(** SQL generation of the paper's relational operator patterns.

    These are the "pure relational model" mappings the paper proposes for
    engines without native reporting functionality (Figs. 2, 4, 10, 13);
    they can be applied in query rewrite directly after parsing a
    reporting-function query.

    Each derivation pattern comes in two flavours — the two columns of
    the paper's Table 2:
    - [`Disjunctive]: one self join with a disjunctive predicate;
    - [`Union]: a UNION ALL of simple-predicate queries, aggregated
      afterwards.

    The predicates use MOD residue classes; the engine's MOD is floored,
    so they remain correct on header/trailer positions (<= 0). *)

type variant =
  [ `Disjunctive
  | `Union
  ]

(** The native reporting-function query over a (pos, val) table
    (Table 1, "reporting functionality" columns). *)
val native_window :
  ?table:string -> ?pos:string -> ?value:string -> Frame.t -> string

(** Fig. 2: computing a sequence by a self join (Table 1, "self join"
    columns).  Sliding frames use a BETWEEN predicate on the position;
    cumulative frames use [s2.pos <= s1.pos]. *)
val fig2_self_join :
  ?table:string -> ?pos:string -> ?value:string -> Frame.t -> string

(** Fig. 4: reconstructing raw values from a cumulative view. *)
val fig4_reconstruct :
  ?table:string -> ?pos:string -> ?value:string -> unit -> string

(** Fig. 10: the MaxOA pattern for deriving [(ly, h)] from a complete
    materialized [(lx, h)] view stored in [table].
    @raise Invalid_argument unless [0 < ly - lx <= lx + h]. *)
val maxoa :
  ?table:string ->
  ?pos:string ->
  ?value:string ->
  lx:int ->
  h:int ->
  ly:int ->
  variant ->
  string

(** Fig. 13: the MinOA pattern for deriving [(ly, hy)] from a complete
    materialized [(lx, hx)] view.  Any target shape is admissible except
    the identity.
    @raise Invalid_argument on the identity derivation. *)
val minoa :
  ?table:string ->
  ?pos:string ->
  ?value:string ->
  lx:int ->
  hx:int ->
  ly:int ->
  hy:int ->
  variant ->
  string
