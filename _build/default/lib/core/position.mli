(** Position functions (paper §6): linearize a multi-column ordering
    scheme into global sequence positions.

    An ordering space is a list of column cardinalities [d_1..d_m]; an
    entry is addressed by coordinates [(k_1,..,k_m)] with
    [1 <= k_i <= d_i], and [pos(k_1,..,k_m)] is its 1-based rank in
    lexicographic order.  For [m = 1], [pos] is the identity (the paper's
    definition). *)

type t

exception Invalid_coordinates of string

(** [create dims] builds the ordering space.
    @raise Invalid_coordinates on an empty list or non-positive dims. *)
val create : int list -> t

val dims : t -> int list
val arity : t -> int

(** Total number of positions, [d_1 · ... · d_m]. *)
val size : t -> int

(** [pos t ks] is the global position of the coordinates.
    @raise Invalid_coordinates on arity or range errors. *)
val pos : t -> int array -> int

(** Inverse of {!pos}. *)
val coords : t -> int -> int array

(** {1 Ordering-reduction support (paper §6.1)}

    Dropping the trailing ordering columns groups all fine positions
    sharing a prefix [(k_1,..,k_keep)]. *)

(** The reduced (prefix) ordering space. *)
val reduced : t -> keep:int -> t

(** Fine position of [(prefix, 1,..,1)] — the paper's
    [pos((k_1,..,k_(n-j)), 1,..,1)]. *)
val first_of_prefix : t -> int array -> int

(** Fine position of [(prefix, d,..,d)], the last entry of the group. *)
val last_of_prefix : t -> int array -> int

(** Fine position range of coarse position [p] in the reduced space. *)
val group_range : t -> keep:int -> int -> int * int

(** The §6.1 window bounds: the fine-position span of a coarse sliding
    frame (l, h) centred at coarse position [p]. *)
val reduced_window : t -> keep:int -> l:int -> h:int -> int -> int * int
