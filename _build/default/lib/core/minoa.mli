(** The MinO Algorithm (paper §5): derive a sliding-window SUM sequence
    [(ly, hy)] from a materialized complete sequence [(lx, hx)] using
    windows with {e minimal} overlap.

    Explicit form (with [wx = 1+lx+hx], [∆l = ly-lx], [∆h = hy-hx]):

    {v y~_k = Σ_(i>=0) x~_(k+∆h-i·wx)  -  Σ_(i>=1) x~_(k-∆l-i·wx) v}

    MinOA needs an invertible aggregate — SUM (hence COUNT and AVG), not
    MIN/MAX (§7).  Unlike MaxOA it has no window-size precondition: the
    deltas may even be negative, so MinOA can also {e shrink} windows. *)

exception Not_derivable of string

(** One target value by the paper's explicit form, O(k/wx) view lookups —
    the access pattern of the Fig. 13 relational operator. *)
val value_at : Seqdata.t -> l:int -> h:int -> k:int -> float

(** The whole derived sequence by the explicit form. *)
val derive_explicit : Seqdata.t -> l:int -> h:int -> Seqdata.t

(** Fast path: one ascending telescoping pass reconstructs the prefix
    sums, then [y~_k = C_(k+h) - C_(k-l-1)]; O(n) for the whole
    sequence.
    @raise Not_derivable
      if the view is not a complete sliding SUM sequence. *)
val derive : Seqdata.t -> l:int -> h:int -> Seqdata.t
