(* Position functions (paper §6): linearize a multi-column ordering scheme
   into global sequence positions.

   An ordering space is a list of column cardinalities d_1..d_m; a
   sequence entry is addressed by coordinates (k_1,..,k_m) with
   1 <= k_i <= d_i, and pos(k_1,..,k_m) is its 1-based rank in
   lexicographic order.  For m = 1, pos = id (paper's definition). *)

type t = {
  dims : int array;
  (* strides.(i) = product of dims.(i+1..m-1): the weight of coordinate i *)
  strides : int array;
  size : int;
}

exception Invalid_coordinates of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid_coordinates s)) fmt

let create dims =
  let dims = Array.of_list dims in
  if Array.length dims = 0 then invalid "ordering space needs at least one column";
  Array.iter (fun d -> if d < 1 then invalid "column cardinality must be >= 1") dims;
  let m = Array.length dims in
  let strides = Array.make m 1 in
  for i = m - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * dims.(i + 1)
  done;
  { dims; strides; size = strides.(0) * dims.(0) }

let dims t = Array.to_list t.dims
let arity t = Array.length t.dims
let size t = t.size

let check_coords t ks =
  if Array.length ks <> arity t then
    invalid "expected %d coordinates, got %d" (arity t) (Array.length ks);
  Array.iteri
    (fun i k ->
      if k < 1 || k > t.dims.(i) then
        invalid "coordinate %d out of range 1..%d" k t.dims.(i))
    ks

(* pos(k_1,..,k_m) = 1 + Σ (k_i - 1)·stride_i. *)
let pos t ks =
  check_coords t ks;
  let acc = ref 1 in
  Array.iteri (fun i k -> acc := !acc + ((k - 1) * t.strides.(i))) ks;
  !acc

let coords t p =
  if p < 1 || p > t.size then invalid "position %d out of range 1..%d" p t.size;
  let rem = ref (p - 1) in
  Array.mapi
    (fun i _ ->
      let k = (!rem / t.strides.(i)) + 1 in
      rem := !rem mod t.strides.(i);
      k)
    t.dims

(* ---- Ordering reduction support (paper §6.1) ----

   Dropping the j right-most ordering columns groups all fine positions
   sharing a prefix (k_1,..,k_{m-j}).  The group of a prefix is the fine
   position range [first_of_prefix, last_of_prefix]; the reduced space is
   the prefix space. *)

let reduced t ~keep =
  if keep < 1 || keep > arity t then invalid "keep must be in 1..%d" (arity t);
  create (Array.to_list (Array.sub t.dims 0 keep))

(* Fine position of (prefix, 1,..,1): the paper's pos((k_1,..,k_{n-j}), 1,..,1). *)
let first_of_prefix t prefix =
  let m = arity t and j = Array.length prefix in
  if j < 1 || j > m then invalid "prefix length %d out of range" j;
  let ks = Array.make m 1 in
  Array.blit prefix 0 ks 0 j;
  pos t ks

(* Fine position of (prefix, d,..,d): the last entry of the group. *)
let last_of_prefix t prefix =
  let m = arity t and j = Array.length prefix in
  if j < 1 || j > m then invalid "prefix length %d out of range" j;
  let ks = Array.init m (fun i -> if i < j then prefix.(i) else t.dims.(i)) in
  pos t ks

(* Fine group range of the coarse position p in the reduced space. *)
let group_range t ~keep p =
  let red = reduced t ~keep in
  let prefix = coords red p in
  (first_of_prefix t prefix, last_of_prefix t prefix)

(* Paper §6.1 window bounds: for a fine position k that heads its group,
   the reduced-by-one-coarse-step window spans from the first position of
   the previous group to the last position of the current group:
     w'L(k) = k - pos(prefix-1, 1,..,1)
     w'H(k) = pos(prefix+1, 1,..,1) - k - 1.
   Generalized to a coarse sliding frame (ly, hy). *)
let reduced_window t ~keep ~l ~h p =
  let red = reduced t ~keep in
  let lo_coarse = p - l and hi_coarse = p + h in
  let lo_fine =
    if lo_coarse < 1 then 1 - (1 - lo_coarse) (* virtual: before the data *)
    else fst (group_range t ~keep lo_coarse)
  in
  let hi_fine =
    if hi_coarse > size red then size t + (hi_coarse - size red)
    else snd (group_range t ~keep hi_coarse)
  in
  (lo_fine, hi_fine)
