(* Incremental maintenance of materialized sequence views (paper §2.3).

   Builds a sizeable sequence view and compares incremental maintenance
   against full recomputation under update / insert / delete, both for
   correctness and for the wall-clock gap the locality of the §2.3 rules
   buys.

   Run with:  dune exec examples/incremental_maintenance.exe *)

module Core = Rfview_core
module Db = Rfview_engine.Database
module Seqgen = Rfview_workload.Seqgen
module Relation = Rfview_relalg.Relation

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let section title = Printf.printf "\n=== %s ===\n%!" title

let () =
  let n = 20_000 in
  let values = Seqgen.raw_values ~seed:7 n in
  let raw = Core.Seqdata.raw_of_array values in
  let frame = Core.Frame.sliding ~l:5 ~h:2 in

  section "Core-level maintenance (§2.3 rules)";
  let seq = Core.Compute.sequence frame raw in
  let edits =
    [ ("update", Core.Maintain.Update { k = n / 2; value = 999. });
      ("insert", Core.Maintain.Insert { k = n / 3; value = -7. });
      ("delete", Core.Maintain.Delete { k = n / 4 }) ]
  in
  List.iter
    (fun (label, edit) ->
      let (incr_seq, _), t_incr = time (fun () -> Core.Maintain.apply seq raw edit) in
      let (full_seq, _), t_full = time (fun () -> Core.Maintain.recompute seq raw edit) in
      Printf.printf "%-8s incremental %.4f ms   recompute %.4f ms   equal=%b\n" label
        (t_incr *. 1000.) (t_full *. 1000.)
        (Core.Seqdata.equal ~eps:1e-6 incr_seq full_seq))
    edits;

  section "Engine-level maintenance (matview under DML)";
  let db = Db.create () in
  Seqgen.create_seq_table db (Seqgen.raw_values ~seed:8 5_000);
  ignore
    (Db.exec db
       "CREATE MATERIALIZED VIEW v AS SELECT pos, val, SUM(val) OVER (ORDER BY pos \
        ROWS BETWEEN 5 PRECEDING AND 2 FOLLOWING) AS s FROM seq");
  Printf.printf "incrementally maintained: %b\n" (Db.is_incrementally_maintained db "v");
  let _, t_upd =
    time (fun () -> Db.exec db "UPDATE seq SET val = 123 WHERE pos = 2500")
  in
  Printf.printf "UPDATE with incremental propagation: %.2f ms\n" (t_upd *. 1000.);
  let _, t_refresh = time (fun () -> Db.exec db "REFRESH MATERIALIZED VIEW v") in
  Printf.printf "full REFRESH of the same view:       %.2f ms\n" (t_refresh *. 1000.);

  section "Locality check";
  let before = Db.query db "SELECT s FROM v WHERE pos IN (100, 2499, 2503)" in
  ignore (Db.exec db "UPDATE seq SET val = 0 WHERE pos = 2500");
  let after = Db.query db "SELECT s FROM v WHERE pos IN (100, 2499, 2503)" in
  let v r i = Rfview_relalg.Value.to_float (Rfview_relalg.Row.get (Relation.rows r).(i) 0) in
  Printf.printf
    "position 100 (outside the edit's scope) unchanged: %b\n\
     position 2499 (inside, h=2 reaches back) changed:  %b\n"
    (v before 0 = v after 0)
    (v before 1 <> v after 1)
