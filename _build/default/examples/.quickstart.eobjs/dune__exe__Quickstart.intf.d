examples/quickstart.mli:
