examples/quickstart.ml: Printf Rfview_engine Rfview_relalg Rfview_sql
