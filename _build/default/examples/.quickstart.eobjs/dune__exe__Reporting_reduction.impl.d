examples/reporting_reduction.ml: Array List Printf Rfview_core Rfview_workload String
