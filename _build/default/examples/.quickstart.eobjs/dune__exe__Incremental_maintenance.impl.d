examples/incremental_maintenance.ml: Array List Printf Rfview_core Rfview_engine Rfview_relalg Rfview_workload Unix
