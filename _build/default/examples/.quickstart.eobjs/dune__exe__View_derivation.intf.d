examples/view_derivation.mli:
