examples/topn_cache.mli:
