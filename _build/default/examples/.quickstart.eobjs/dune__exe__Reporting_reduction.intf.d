examples/reporting_reduction.mli:
