examples/credit_analysis.ml: Array Printf Rfview_engine Rfview_relalg Rfview_workload
