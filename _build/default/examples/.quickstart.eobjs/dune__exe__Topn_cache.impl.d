examples/topn_cache.ml: List Printf Rfview_engine Rfview_relalg Rfview_workload Unix
