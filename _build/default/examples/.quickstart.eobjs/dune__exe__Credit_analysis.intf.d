examples/credit_analysis.mli:
