examples/incremental_maintenance.mli:
