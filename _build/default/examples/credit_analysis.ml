(* Credit-card analysis: the workload from the paper's introduction.

   Generates the c_transactions / l_locations star schema and runs the
   paper's reporting-function query (cumulative totals, per-month
   cumulative sums, centered and prospective moving averages), plus a
   TOP(n) ranking analysis and a region-level Year-To-Date report.

   Run with:  dune exec examples/credit_analysis.exe *)

module Db = Rfview_engine.Database
module Tx = Rfview_workload.Transactions
module Relation = Rfview_relalg.Relation

let section title = Printf.printf "\n=== %s ===\n%!" title

let () =
  let db = Db.create () in
  let config = { Tx.default_config with days = 60; transactions_per_day = 25 } in
  Tx.load ~config db;

  section "Schema";
  Printf.printf "c_transactions: %d rows, l_locations: %d rows\n"
    (Relation.cardinality (Db.query db "SELECT * FROM c_transactions"))
    (Relation.cardinality (Db.query db "SELECT * FROM l_locations"));

  section "The paper's introduction query (customer 7)";
  let r = Db.query db (Tx.intro_query ~custid:7 ()) in
  Relation.print ~max_rows:15 r;

  section "TOP(5) customers by total spend (ranking analysis)";
  Relation.print
    (Db.query db
       "SELECT c_custid, SUM(c_transaction) AS total, COUNT(*) AS n FROM \
        c_transactions GROUP BY c_custid ORDER BY total DESC LIMIT 5");

  section "Year-to-date spend per region (reporting function over a join)";
  Relation.print ~max_rows:12
    (Db.query db
       "SELECT l_region, c_date, SUM(daily) OVER (PARTITION BY l_region ORDER BY \
        c_date ROWS UNBOUNDED PRECEDING) AS ytd FROM (SELECT l_region, c_date, \
        SUM(c_transaction) AS daily FROM c_transactions, l_locations WHERE c_locid = \
        l_locid GROUP BY l_region, c_date) d ORDER BY l_region, c_date");

  section "7-day smoothing of daily volume (sliding window)";
  Relation.print ~max_rows:10
    (Db.query db
       "SELECT c_date, SUM(daily) OVER (ORDER BY c_date ROWS BETWEEN 3 PRECEDING AND \
        3 FOLLOWING) / 7 AS smoothed FROM (SELECT c_date, SUM(c_transaction) AS \
        daily FROM c_transactions GROUP BY c_date) d ORDER BY c_date");

  section "Materialized daily-volume sequence view + incremental maintenance";
  ignore
    (Db.exec db
       "CREATE TABLE daily_volume (pos INT, vol FLOAT)");
  (* densify daily volumes into a positional sequence *)
  let daily =
    Db.query db
      "SELECT c_date, SUM(c_transaction) AS vol FROM c_transactions GROUP BY c_date \
       ORDER BY c_date"
  in
  let rows =
    Array.mapi
      (fun i row ->
        [| Rfview_relalg.Value.Int (i + 1); Rfview_relalg.Row.get row 1 |])
      (Relation.rows daily)
  in
  Db.load_table db ~table:"daily_volume" rows;
  ignore
    (Db.exec db
       "CREATE MATERIALIZED VIEW weekly AS SELECT pos, SUM(vol) OVER (ORDER BY pos \
        ROWS BETWEEN 6 PRECEDING AND CURRENT ROW) AS w FROM daily_volume");
  Printf.printf "weekly view incrementally maintained: %b\n"
    (Db.is_incrementally_maintained db "weekly");
  ignore (Db.exec db "UPDATE daily_volume SET vol = vol + 500 WHERE pos = 10");
  Relation.print ~max_rows:6
    (Db.query db "SELECT * FROM weekly WHERE pos BETWEEN 8 AND 13 ORDER BY pos")
