(* Reporting sequences (paper §6): multi-column ordering with the
   position function, ordering reduction, and partitioning reduction.

   A year of daily sales is ordered by (month, day); we materialize a
   fine-grained sliding sequence per region and then derive — without
   touching the raw data again —
   - a month-level sequence (ordering reduction, Lemma 6.1), and
   - the region-merged sequence (partitioning reduction, Lemma 6.2).

   Run with:  dune exec examples/reporting_reduction.exe *)

module Core = Rfview_core
module Prng = Rfview_workload.Prng

let section title = Printf.printf "\n=== %s ===\n%!" title

let print_first label n (s : Core.Seqdata.t) =
  Printf.printf "%-28s" label;
  for k = 1 to min n (Core.Seqdata.length s) do
    Printf.printf " %7.0f" (Core.Seqdata.get s k)
  done;
  if Core.Seqdata.length s > n then Printf.printf " ...";
  print_newline ()

let () =
  (* ordering space: 12 months x 30 days *)
  let space = Core.Position.create [ 12; 30 ] in
  let prng = Prng.create ~seed:2002 in
  let daily_sales _region =
    Core.Seqdata.raw_of_array
      (Array.init (Core.Position.size space) (fun _ ->
           float_of_int (Prng.int_range prng ~lo:50 ~hi:150)))
  in
  let partitions =
    [ ([ "North" ], daily_sales "North"); ([ "South" ], daily_sales "South") ]
  in

  section "Position function (paper Def. 6.1)";
  Printf.printf "pos(3, 1)  = %d   (first day of March)\n"
    (Core.Position.pos space [| 3; 1 |]);
  Printf.printf "pos(3, 30) = %d   (last day of March)\n"
    (Core.Position.pos space [| 3; 30 |]);
  let a, b = Core.Position.group_range space ~keep:1 3 in
  Printf.printf "group of month 3 spans fine positions [%d, %d]\n" a b;

  section "Fine-grained reporting view: 7-day centered sum per region";
  let frame = Core.Frame.sliding ~l:3 ~h:3 in
  let view = Core.Reporting.compute frame space partitions in
  Printf.printf "complete reporting function: %b\n" (Core.Reporting.is_complete view);
  (match Core.Reporting.find_partition view [ "North" ] with
   | Some s -> print_first "North, daily (first 8)" 8 s
   | None -> ());

  section "Ordering reduction: collapse days, 3-month centered sum (Lemma 6.1)";
  let monthly =
    Core.Reporting.ordering_reduction view ~keep:1
      ~target_frame:(Core.Frame.sliding ~l:1 ~h:1)
  in
  List.iter
    (fun (key, s) -> print_first (String.concat "," key ^ ", monthly") 12 s)
    (Core.Reporting.partitions monthly);

  section "Partitioning reduction: merge the regions (Lemma 6.2)";
  let merged = Core.Reporting.partitioning_reduction view ~group:(fun _ -> [ "all" ]) in
  (match Core.Reporting.partitions merged with
   | [ (_, s) ] ->
     print_first "all regions, daily" 8 s;
     Printf.printf "merged length: %d (= 2 regions x 360 days)\n"
       (Core.Seqdata.length s)
   | _ -> ());

  section "Check against direct recomputation";
  let reference =
    Core.Reporting.recompute_merged frame
      (List.map (fun (k, raw) -> (k, raw)) partitions)
      ~group:(fun _ -> [ "all" ])
  in
  (match reference, Core.Reporting.partitions merged with
   | [ (_, expected) ], [ (_, derived) ] ->
     Printf.printf "partitioning reduction exact: %b\n"
       (Core.Seqdata.equal ~eps:1e-9 expected derived)
   | _ -> ())
