(* TOP(n) ranking analyses and the derivation-aware query cache.

   The paper's introduction names ranking queries (TOP(n) analyses) as a
   prime application of reporting functions, and §3 motivates derivability
   with warehouse systems that cache incoming user queries.  This example
   shows both: RANK/ROW_NUMBER/LAG analyses over the credit-card workload,
   and a cache session in which successive window queries are answered by
   MinOA/MaxOA derivation from earlier ones.

   Run with:  dune exec examples/topn_cache.exe *)

module Db = Rfview_engine.Database
module Cache = Rfview_engine.Cache
module Tx = Rfview_workload.Transactions
module Seqgen = Rfview_workload.Seqgen
module Relation = Rfview_relalg.Relation

let section title = Printf.printf "\n=== %s ===\n%!" title

let () =
  let db = Db.create () in
  Tx.load ~config:{ Tx.default_config with days = 30; transactions_per_day = 30 } db;

  section "TOP(3) spenders per region (RANK over a grouped join)";
  Relation.print
    (Db.query db
       "SELECT l_region, c_custid, total FROM (SELECT l_region, c_custid, total, \
        RANK() OVER (PARTITION BY l_region ORDER BY total DESC) AS rk FROM (SELECT \
        l_region, c_custid, SUM(c_transaction) AS total FROM c_transactions, \
        l_locations WHERE c_locid = l_locid GROUP BY l_region, c_custid) g) r WHERE \
        rk <= 3 ORDER BY l_region, total DESC");

  section "Day-over-day change of daily volume (LAG)";
  Relation.print ~max_rows:8
    (Db.query db
       "SELECT c_date, daily, daily - LAG(daily) OVER (ORDER BY c_date) AS change \
        FROM (SELECT c_date, SUM(c_transaction) AS daily FROM c_transactions GROUP \
        BY c_date) d ORDER BY c_date");

  section "A cache session over sliding-window queries";
  let db2 = Db.create () in
  Seqgen.create_seq_table db2 (Seqgen.raw_values ~seed:99 2_000);
  let cache = Cache.create db2 in
  let queries =
    [
      (* miss: first time this shape is seen *)
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 \
       FOLLOWING) AS s FROM seq";
      (* hit: identical query *)
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 \
       FOLLOWING) AS s FROM seq";
      (* hit: wider window, derived by MinOA/MaxOA from the cached entry *)
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 4 PRECEDING AND 1 \
       FOLLOWING) AS s FROM seq";
      (* hit: cumulative, derived from the sliding view via telescoping *)
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS s FROM seq";
      (* hit: AVG answered from the cached SUM sequence *)
      "SELECT pos, AVG(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 1 \
       FOLLOWING) AS a FROM seq";
      (* bypass: not a sequence query *)
      "SELECT COUNT(*) AS n FROM seq";
    ]
  in
  List.iteri
    (fun i sql ->
      let t0 = Unix.gettimeofday () in
      let _, outcome = Cache.query cache sql in
      let dt = (Unix.gettimeofday () -. t0) *. 1000. in
      Printf.printf "query %d: %-40s  (%.2f ms)\n" (i + 1)
        (Cache.describe_outcome outcome) dt)
    queries;
  let s = Cache.stats cache in
  Printf.printf "\ncache stats: %d hits, %d misses, %d bypasses\n" s.Cache.hits
    s.Cache.misses s.Cache.bypasses
