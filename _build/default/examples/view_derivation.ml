(* View derivation walkthrough: the paper's §3-§5 on a concrete sequence.

   Shows every derivation direction — reconstruction of raw values,
   sliding windows from a cumulative view, MaxOA and MinOA between sliding
   views — both at the core level and through the generated relational
   operator patterns executed by the SQL engine.

   Run with:  dune exec examples/view_derivation.exe *)

module Core = Rfview_core
module Db = Rfview_engine.Database
module Seqgen = Rfview_workload.Seqgen
module Relation = Rfview_relalg.Relation

let section title = Printf.printf "\n=== %s ===\n%!" title

let print_seq label (s : Core.Seqdata.t) =
  Printf.printf "%-26s" label;
  for k = 1 to Core.Seqdata.length s do
    Printf.printf " %5.0f" (Core.Seqdata.get s k)
  done;
  print_newline ()

let () =
  let values = [| 2.; 7.; 1.; 8.; 2.; 8.; 1.; 8.; 2.; 8.; 4.; 5. |] in
  let raw = Core.Seqdata.raw_of_array values in

  section "Raw data";
  Printf.printf "%-26s" "x";
  Array.iter (Printf.printf " %5.0f") values;
  print_newline ();

  section "Materialized sequences";
  let cumulative = Core.Compute.sequence Core.Frame.Cumulative raw in
  let v21 = Core.Compute.sequence (Core.Frame.sliding ~l:2 ~h:1) raw in
  print_seq "cumulative" cumulative;
  print_seq "sliding (2,1)" v21;
  Printf.printf "header of (2,1): x~(0) = %g   trailer: x~(n+1) = %g, x~(n+2) = %g\n"
    (Core.Seqdata.get v21 0)
    (Core.Seqdata.get v21 13)
    (Core.Seqdata.get v21 14);

  section "Reconstruction (Fig. 4 / §3.2)";
  let back = Core.Reconstruct.raw_all v21 in
  Printf.printf "%-26s" "raw from (2,1) view";
  Array.iter (Printf.printf " %5.0f") (Core.Seqdata.raw_to_array back);
  print_newline ();

  section "Sliding window from the cumulative view (Fig. 5)";
  print_seq "derived (2,1)" (Core.Derive.sliding_from_cumulative cumulative ~l:2 ~h:1);

  section "MaxOA: (3,1) from (2,1) — the paper's Fig. 6 example";
  let dl = 1 in
  let dp = Core.Maxoa.overlap_factor ~lx:2 ~h:1 ~dl in
  Printf.printf "coverage factor ∆l = %d, overlap factor ∆p = %d\n" dl dp;
  print_seq "MaxOA recursive" (Core.Maxoa.derive_left v21 ~ly:3);
  print_seq "MaxOA explicit" (Core.Maxoa.derive_left_explicit v21 ~ly:3);
  print_seq "direct (check)" (Core.Compute.sequence (Core.Frame.sliding ~l:3 ~h:1) raw);

  section "MinOA: (3,2) from (2,1)";
  print_seq "MinOA" (Core.Minoa.derive v21 ~l:3 ~h:2);
  print_seq "direct (check)" (Core.Compute.sequence (Core.Frame.sliding ~l:3 ~h:2) raw);

  section "MIN/MAX derivation (MaxOA only, §4.2)";
  let vmin = Core.Compute.sequence ~agg:Core.Agg.Min (Core.Frame.sliding ~l:2 ~h:1) raw in
  print_seq "MIN (2,1) view" vmin;
  print_seq "MIN (3,2) derived" (Core.Maxoa.derive_minmax vmin ~ly:3 ~hy:2);

  section "The relational operator patterns (Figs. 10 and 13) via SQL";
  let db = Db.create () in
  Seqgen.create_matseq_table ~indexed:true db v21;
  let maxoa_sql = Core.Sqlgen.maxoa ~lx:2 ~h:1 ~ly:3 `Disjunctive in
  Printf.printf "MaxOA pattern SQL:\n  %s\n\n" maxoa_sql;
  Relation.print ~max_rows:14
    (Db.query db (maxoa_sql ^ " ORDER BY pos"));
  let minoa_sql = Core.Sqlgen.minoa ~lx:2 ~hx:1 ~ly:3 ~hy:2 `Union in
  Printf.printf "MinOA pattern SQL (union variant):\n  %s\n\n" minoa_sql;
  Relation.print ~max_rows:14 (Db.query db (minoa_sql ^ " ORDER BY pos"));

  section "Derivability matrix";
  let frames =
    [ ("cumulative", Core.Frame.Cumulative);
      ("(2,1)", Core.Frame.sliding ~l:2 ~h:1);
      ("(3,2)", Core.Frame.sliding ~l:3 ~h:2);
      ("(1,0)", Core.Frame.sliding ~l:1 ~h:0) ]
  in
  Printf.printf "%-12s" "view \\ query";
  List.iter (fun (n, _) -> Printf.printf " %-14s" n) frames;
  print_newline ();
  List.iter
    (fun (vn, vf) ->
      Printf.printf "%-12s" vn;
      List.iter
        (fun (_, qf) ->
          let s =
            Core.Derive.applicable_strategies ~view_frame:vf ~view_agg:Core.Agg.Sum
              ~query_frame:qf
            |> List.map Core.Derive.strategy_name
            |> String.concat "/"
          in
          Printf.printf " %-14s" (if s = "" then "-" else s))
        frames;
      print_newline ())
    frames
