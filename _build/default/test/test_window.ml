(* Tests of the native window (reporting-function) operator: frames,
   partitioning, ordering, NULL handling, and equivalence of the naive and
   incremental execution strategies. *)

open Rfview_relalg

let value_testable = Alcotest.testable Value.pp Value.equal
let check_value = Alcotest.check value_testable

let schema =
  Schema.make
    [
      Schema.column "grp" Dtype.String;
      Schema.column "pos" Dtype.Int;
      Schema.column "val" Dtype.Float;
    ]

let mk rows =
  Relation.of_array schema
    (Array.of_list
       (List.map
          (fun (g, p, v) ->
            [| Value.String g; Value.Int p;
               (match v with None -> Value.Null | Some f -> Value.Float f) |])
          rows))

let simple_rows = List.init 6 (fun i -> ("a", i + 1, Some (float_of_int (i + 1))))

let window_fn ?(partition = []) ?(order = [ Sortop.key (Expr.Col 1) ]) agg frame name =
  {
    Window.func = Window.Agg agg;
    arg = Expr.Col 2;
    spec = { Window.partition; order; frame };
    name;
  }

let column r i = Array.to_list (Relation.column_values r i)

let vi i = Value.Int i
let vf f = Value.Float f

(* ---- Frames ---- *)

let test_cumulative () =
  let out =
    Window.extend (mk simple_rows)
      [ window_fn Aggregate.Sum Window.cumulative_frame "c" ]
  in
  Alcotest.(check (list value_testable)) "running sum"
    [ vf 1.; vf 3.; vf 6.; vf 10.; vf 15.; vf 21. ]
    (column out 3)

let test_sliding () =
  let out =
    Window.extend (mk simple_rows)
      [ window_fn Aggregate.Sum (Window.sliding_frame ~l:1 ~h:1) "c" ]
  in
  Alcotest.(check (list value_testable)) "centered window"
    [ vf 3.; vf 6.; vf 9.; vf 12.; vf 15.; vf 11. ]
    (column out 3)

let test_prospective () =
  (* the paper's 7-day prospective average, scaled down: CURRENT..2 FOLLOWING *)
  let out =
    Window.extend (mk simple_rows)
      [
        window_fn Aggregate.Avg
          { Window.lo = Window.Current_row; hi = Window.Following 2; mode = Window.Rows }
          "c";
      ]
  in
  Alcotest.(check (list value_testable)) "prospective average"
    [ vf 2.; vf 3.; vf 4.; vf 5.; vf 5.5; vf 6. ]
    (column out 3)

let test_whole_partition () =
  let out =
    Window.extend (mk simple_rows)
      [ window_fn Aggregate.Sum Window.whole_partition_frame "c" ]
  in
  Alcotest.(check (list value_testable)) "whole partition"
    (List.init 6 (fun _ -> vf 21.))
    (column out 3)

let test_strictly_preceding_frame () =
  (* ROWS BETWEEN 2 PRECEDING AND 1 PRECEDING: empty frame on the first row *)
  let out =
    Window.extend (mk simple_rows)
      [
        window_fn Aggregate.Sum
          { Window.lo = Window.Preceding 2; hi = Window.Preceding 1; mode = Window.Rows }
          "c";
      ]
  in
  Alcotest.(check (list value_testable)) "trailing-only window"
    [ Value.Null; vf 1.; vf 3.; vf 5.; vf 7.; vf 9. ]
    (column out 3)

let test_count_empty_frame () =
  let out =
    Window.extend (mk simple_rows)
      [
        {
          Window.func = Window.Agg Aggregate.Count;
          arg = Expr.Col 2;
          spec =
            {
              Window.partition = [];
              order = [ Sortop.key (Expr.Col 1) ];
              frame = { Window.lo = Window.Preceding 2; hi = Window.Preceding 1; mode = Window.Rows };
            };
          name = "c";
        };
      ]
  in
  Alcotest.(check (list value_testable)) "count over empty frame is 0"
    [ vi 0; vi 1; vi 2; vi 2; vi 2; vi 2 ]
    (column out 3)

(* ---- Partitioning ---- *)

let test_partitioned () =
  let rows =
    [ ("a", 1, Some 1.); ("b", 1, Some 10.); ("a", 2, Some 2.); ("b", 2, Some 20.) ]
  in
  let out =
    Window.extend (mk rows)
      [
        window_fn ~partition:[ Expr.Col 0 ] Aggregate.Sum Window.cumulative_frame "c";
      ]
  in
  (* original row order is preserved *)
  Alcotest.(check (list value_testable)) "per-partition running sums"
    [ vf 1.; vf 10.; vf 3.; vf 30. ]
    (column out 3)

let test_order_desc () =
  let out =
    Window.extend (mk simple_rows)
      [
        window_fn
          ~order:[ Sortop.key ~asc:false (Expr.Col 1) ]
          Aggregate.Sum Window.cumulative_frame "c";
      ]
  in
  Alcotest.(check (list value_testable)) "descending cumulative"
    [ vf 21.; vf 20.; vf 18.; vf 15.; vf 11.; vf 6. ]
    (column out 3)

let test_nulls_skipped () =
  let rows = [ ("a", 1, Some 1.); ("a", 2, None); ("a", 3, Some 3.) ] in
  let out =
    Window.extend (mk rows) [ window_fn Aggregate.Sum Window.cumulative_frame "c" ]
  in
  Alcotest.(check (list value_testable)) "null skipped"
    [ vf 1.; vf 1.; vf 4. ]
    (column out 3);
  let out =
    Window.extend (mk [ ("a", 1, None) ])
      [ window_fn Aggregate.Sum Window.cumulative_frame "c" ]
  in
  check_value "all-null window is NULL" Value.Null (Row.get (Relation.rows out).(0) 3)

let test_minmax_frames () =
  let rows =
    [ ("a", 1, Some 5.); ("a", 2, Some 1.); ("a", 3, Some 4.); ("a", 4, Some 2.) ]
  in
  let out =
    Window.extend (mk rows)
      [
        window_fn Aggregate.Min (Window.sliding_frame ~l:1 ~h:1) "mn";
        window_fn Aggregate.Max Window.cumulative_frame "mx";
      ]
  in
  Alcotest.(check (list value_testable)) "sliding min"
    [ vf 1.; vf 1.; vf 1.; vf 2. ]
    (column out 3);
  Alcotest.(check (list value_testable)) "cumulative max"
    [ vf 5.; vf 5.; vf 5.; vf 5. ]
    (column out 4)

let test_multiple_fns_one_pass () =
  (* the intro query shape: several reporting functions side by side *)
  let out =
    Window.extend (mk simple_rows)
      [
        window_fn Aggregate.Sum Window.cumulative_frame "cum";
        window_fn Aggregate.Avg (Window.sliding_frame ~l:1 ~h:1) "mvg";
        window_fn Aggregate.Count Window.whole_partition_frame "n";
      ]
  in
  Alcotest.(check int) "three new columns" 6 (Schema.arity (Relation.schema out));
  check_value "cum last" (vf 21.) (Row.get (Relation.rows out).(5) 3);
  check_value "count" (vi 6) (Row.get (Relation.rows out).(5) 5)

(* ---- RANGE frames ---- *)

let test_range_frame () =
  (* gaps in the key: value-distance windows differ from row windows *)
  let rows =
    [ ("a", 1, Some 10.); ("a", 2, Some 20.); ("a", 5, Some 50.); ("a", 6, Some 60.);
      ("a", 6, Some 61.); ("a", 10, Some 100.) ]
  in
  let fn frame = window_fn Aggregate.Sum frame "c" in
  let get frame = column (Window.extend (mk rows) [ fn frame ]) 3 in
  Alcotest.(check (list value_testable)) "range 1 preceding .. current (peers included)"
    [ vf 10.; vf 30.; vf 50.; vf 171.; vf 171.; vf 100. ]
    (get { Window.lo = Window.Preceding 1; hi = Window.Current_row; mode = Window.Range });
  Alcotest.(check (list value_testable)) "range centered"
    [ vf 30.; vf 30.; vf 171.; vf 171.; vf 171.; vf 100. ]
    (get (Window.range_frame ~l:1 ~h:1));
  Alcotest.(check (list value_testable)) "range cumulative includes peers"
    [ vf 10.; vf 30.; vf 80.; vf 201.; vf 201.; vf 301. ]
    (get { Window.lo = Window.Unbounded_preceding; hi = Window.Current_row; mode = Window.Range })

let test_range_descending_and_minmax () =
  let rows = [ ("a", 1, Some 10.); ("a", 3, Some 5.); ("a", 4, Some 20.) ] in
  (* descending key: 1 PRECEDING means one unit towards larger keys *)
  let fn =
    {
      Window.func = Window.Agg Aggregate.Min;
      arg = Expr.Col 2;
      spec =
        {
          Window.partition = [];
          order = [ Sortop.key ~asc:false (Expr.Col 1) ];
          frame = { Window.lo = Window.Preceding 1; hi = Window.Current_row; mode = Window.Range };
        };
      name = "c";
    }
  in
  (* order desc: keys 4,3,1; windows: {4}->20, {4,3}->5, {1}->10 *)
  Alcotest.(check (list value_testable)) "descending range min"
    [ vf 10.; vf 5.; vf 20. ]
    (column (Window.extend (mk rows) [ fn ]) 3)

let test_range_requires_single_key () =
  let r = mk [ ("a", 1, Some 1.) ] in
  let fn =
    {
      Window.func = Window.Agg Aggregate.Sum;
      arg = Expr.Col 2;
      spec =
        { Window.partition = []; order = []; frame = Window.range_frame ~l:1 ~h:1 };
      name = "c";
    }
  in
  Alcotest.(check bool) "no order key rejected" true
    (match Window.extend r [ fn ] with
     | exception Window.Invalid_frame _ -> true
     | _ -> false)

let prop_range_eq_naive =
  (* RANGE windows under both strategies agree *)
  QCheck.Test.make ~count:300 ~name:"range: naive = incremental"
    QCheck.(
      make
        Gen.(
          let* n = int_range 0 30 in
          let* rows =
            list_size (return n)
              (let* p = int_range 0 15 in
               let* v = map float_of_int (int_range (-20) 20) in
               return ("a", p, Some v))
          in
          let* l = int_range 0 5 in
          let* h = int_range 0 5 in
          let* agg = oneofl [ Aggregate.Sum; Aggregate.Min; Aggregate.Max; Aggregate.Avg ] in
          return (rows, l, h, agg)))
    (fun (rows, l, h, agg) ->
      let fn = window_fn agg (Window.range_frame ~l ~h) "c" in
      let r = mk rows in
      Relation.equal_ordered
        (Window.extend ~strategy:Window.Naive r [ fn ])
        (Window.extend ~strategy:Window.Incremental r [ fn ]))

(* RANGE must agree with a direct per-row filter over key distance. *)
let prop_range_matches_filter =
  QCheck.Test.make ~count:300 ~name:"range = key-distance filter"
    QCheck.(
      make
        Gen.(
          let* n = int_range 0 25 in
          let* keys = list_size (return n) (int_range 0 12) in
          let* l = int_range 0 4 in
          let* h = int_range 0 4 in
          return (keys, l, h)))
    (fun (keys, l, h) ->
      let rows = List.map (fun k -> ("a", k, Some (float_of_int k))) keys in
      let fn = window_fn Aggregate.Sum (Window.range_frame ~l ~h) "c" in
      let out = Window.extend (mk rows) [ fn ] in
      Array.for_all
        (fun row ->
          let k = Value.to_int (Row.get row 1) in
          let expected =
            List.fold_left
              (fun acc kp ->
                if kp >= k - l && kp <= k + h then acc +. float_of_int kp else acc)
              0. keys
          in
          match Row.get row 3 with
          | Value.Float f -> Float.abs (f -. expected) < 1e-9
          | Value.Int i -> float_of_int i = expected
          | _ -> false)
        (Relation.rows out))

(* ---- Ranking functions ---- *)

let rank_fn func =
  {
    Window.func;
    arg = Expr.Const (Value.Int 1);
    spec =
      {
        Window.partition = [ Expr.Col 0 ];
        order = [ Sortop.key (Expr.Col 2) ];
        frame = Window.cumulative_frame;
      };
    name = "r";
  }

let test_ranking () =
  let rows =
    [ ("a", 1, Some 10.); ("a", 2, Some 30.); ("a", 3, Some 30.); ("a", 4, Some 50.);
      ("b", 1, Some 5.); ("b", 2, Some 5.) ]
  in
  let r = mk rows in
  let get func =
    column (Window.extend r [ rank_fn func ]) 3
  in
  Alcotest.(check (list value_testable)) "row_number"
    [ vi 1; vi 2; vi 3; vi 4; vi 1; vi 2 ]
    (get Window.Row_number);
  Alcotest.(check (list value_testable)) "rank"
    [ vi 1; vi 2; vi 2; vi 4; vi 1; vi 1 ]
    (get Window.Rank);
  Alcotest.(check (list value_testable)) "dense_rank"
    [ vi 1; vi 2; vi 2; vi 3; vi 1; vi 1 ]
    (get Window.Dense_rank)

let test_rank_descending () =
  let rows = [ ("a", 1, Some 10.); ("a", 2, Some 30.); ("a", 3, Some 20.) ] in
  let fn =
    { (rank_fn Window.Rank) with
      Window.spec =
        { Window.partition = []; order = [ Sortop.key ~asc:false (Expr.Col 2) ];
          frame = Window.cumulative_frame } }
  in
  Alcotest.(check (list value_testable)) "rank desc"
    [ vi 3; vi 1; vi 2 ]
    (column (Window.extend (mk rows) [ fn ]) 3)

(* ---- Naive = incremental (property) ---- *)

let gen_case =
  QCheck.Gen.(
    let* n = int_range 0 40 in
    let* rows =
      list_size (return n)
        (let* g = oneofl [ "a"; "b"; "c" ] in
         let* p = int_range 0 12 in
         let* v = frequency [ (9, map (fun i -> Some (float_of_int i)) (int_range (-30) 30)); (1, return None) ] in
         return (g, p, v))
    in
    let* agg = oneofl [ Aggregate.Sum; Aggregate.Count; Aggregate.Avg; Aggregate.Min; Aggregate.Max ] in
    let* frame =
      oneof
        [
          return Window.cumulative_frame;
          return Window.whole_partition_frame;
          (let* l = int_range 0 5 in
           let* h = int_range 0 5 in
           return (Window.sliding_frame ~l ~h));
          (let* a = int_range 0 4 in
           let* b = int_range 0 4 in
           return { Window.lo = Window.Preceding (a + b); hi = Window.Preceding b; mode = Window.Rows });
          (let* a = int_range 0 4 in
           let* b = int_range 0 4 in
           return { Window.lo = Window.Following a; hi = Window.Following (a + b); mode = Window.Rows });
          (let* h = int_range 0 4 in
           return { Window.lo = Window.Preceding h; hi = Window.Unbounded_following; mode = Window.Rows });
        ]
    in
    let* partitioned = bool in
    return (rows, agg, frame, partitioned))

let arb_case =
  QCheck.make gen_case ~print:(fun (rows, agg, frame, partitioned) ->
      Printf.sprintf "%d rows, %s, lo/hi=%s, partitioned=%b" (List.length rows)
        (Aggregate.kind_name agg)
        (match frame with
         | { Window.lo = Window.Preceding l; hi = Window.Following h; _ } ->
           Printf.sprintf "(%d,%d)" l h
         | _ -> "other")
        partitioned)

let prop_naive_eq_incremental (rows, agg, frame, partitioned) =
  let r = mk rows in
  let fn =
    window_fn
      ~partition:(if partitioned then [ Expr.Col 0 ] else [])
      agg frame "c"
  in
  let a = Window.extend ~strategy:Window.Naive r [ fn ] in
  let b = Window.extend ~strategy:Window.Incremental r [ fn ] in
  Relation.equal_ordered a b

let () =
  Alcotest.run "window"
    [
      ( "frames",
        [
          Alcotest.test_case "cumulative" `Quick test_cumulative;
          Alcotest.test_case "sliding" `Quick test_sliding;
          Alcotest.test_case "prospective avg" `Quick test_prospective;
          Alcotest.test_case "whole partition" `Quick test_whole_partition;
          Alcotest.test_case "strictly preceding" `Quick test_strictly_preceding_frame;
          Alcotest.test_case "count empty frame" `Quick test_count_empty_frame;
        ] );
      ( "partitioning",
        [
          Alcotest.test_case "partitioned" `Quick test_partitioned;
          Alcotest.test_case "descending order" `Quick test_order_desc;
          Alcotest.test_case "null handling" `Quick test_nulls_skipped;
          Alcotest.test_case "min/max frames" `Quick test_minmax_frames;
          Alcotest.test_case "multiple functions" `Quick test_multiple_fns_one_pass;
        ] );
      ( "range",
        [
          Alcotest.test_case "value-distance windows" `Quick test_range_frame;
          Alcotest.test_case "descending + min" `Quick test_range_descending_and_minmax;
          Alcotest.test_case "requires one key" `Quick test_range_requires_single_key;
          QCheck_alcotest.to_alcotest prop_range_eq_naive;
          QCheck_alcotest.to_alcotest prop_range_matches_filter;
        ] );
      ( "ranking",
        [
          Alcotest.test_case "row_number/rank/dense_rank" `Quick test_ranking;
          Alcotest.test_case "descending order" `Quick test_rank_descending;
        ] );
      ( "strategies",
        [
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make ~count:500 ~name:"naive = incremental" arb_case
               prop_naive_eq_incremental);
        ] );
    ]
