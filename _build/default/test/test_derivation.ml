(* Tests of the derivation algorithms: MaxOA (§4), MinOA (§5), the
   cumulative rules (§3) and the reporting-sequence reductions (§6). *)

open Rfview_core

(* Compare the derived sequence with a direct computation of the target
   frame from raw data, over the full complete range of the target. *)
let check_against_direct ?(agg = Agg.Sum) raw target_frame derived =
  let direct = Compute.naive ~agg target_frame raw in
  if not (Seqdata.equal ~eps:1e-6 direct derived) then
    Alcotest.failf "derivation mismatch:@.direct  %s@.derived %s"
      (Format.asprintf "%a" Seqdata.pp direct)
      (Format.asprintf "%a" Seqdata.pp derived)

let prop_against_direct ?(agg = Agg.Sum) raw target_frame derived =
  let direct = Compute.naive ~agg target_frame raw in
  Seqdata.equal ~eps:1e-6 direct derived

let raw_of_ints ints = Seqdata.raw_of_array (Array.of_list (List.map float_of_int ints))

let gen_raw =
  QCheck.Gen.(
    let* n = int_range 0 60 in
    let* data = array_size (return n) (map float_of_int (int_range (-40) 40)) in
    return (Seqdata.raw_of_array data))

let print_raw r =
  Format.asprintf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf v -> Format.fprintf ppf "%g" v))
    (Array.to_list (Seqdata.raw_to_array r))

let qtest ?(count = 400) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* ---- §3.1: deriving from cumulative views ---- *)

let gen_cumulative_case =
  QCheck.Gen.(
    let* raw = gen_raw in
    let* l = int_range 0 6 in
    let* h = int_range 0 6 in
    return (raw, l, h))

let arb_cumulative_case =
  QCheck.make gen_cumulative_case ~print:(fun (raw, l, h) ->
      Printf.sprintf "%s l=%d h=%d" (print_raw raw) l h)

let prop_sliding_from_cumulative (raw, l, h) =
  let view = Compute.sequence Frame.Cumulative raw in
  let derived = Derive.sliding_from_cumulative view ~l ~h in
  prop_against_direct raw (Frame.sliding ~l ~h) derived

let prop_cumulative_from_sliding (raw, l, h) =
  let view = Compute.sequence (Frame.sliding ~l ~h) raw in
  let derived = Derive.cumulative_from_sliding view in
  prop_against_direct raw Frame.Cumulative derived

(* The worked example of Fig. 5: ỹ = (2,1) from a cumulative view. *)
let test_fig5_example () =
  let raw = raw_of_ints [ 3; 1; 4; 1; 5; 9; 2 ] in
  let view = Compute.sequence Frame.Cumulative raw in
  let derived = Derive.sliding_from_cumulative view ~l:2 ~h:1 in
  check_against_direct raw (Frame.sliding ~l:2 ~h:1) derived

(* ---- §4: MaxOA ---- *)

(* Cases satisfying the sound single-sided range 1 <= ∆l <= lx+h. *)
let gen_maxoa_left_case =
  QCheck.Gen.(
    let* raw = gen_raw in
    let* lx = int_range 0 4 in
    let* h = int_range 0 4 in
    if lx + h = 0 then return (raw, 0, 1, 1)
    else
      let* dl = int_range 1 (lx + h) in
      return (raw, lx, h, lx + dl))

let arb_maxoa_left =
  QCheck.make gen_maxoa_left_case ~print:(fun (raw, lx, h, ly) ->
      Printf.sprintf "%s (lx=%d,h=%d) -> ly=%d" (print_raw raw) lx h ly)

let prop_maxoa_left (raw, lx, h, ly) =
  let view = Compute.sequence (Frame.sliding ~l:lx ~h) raw in
  prop_against_direct raw (Frame.sliding ~l:ly ~h) (Maxoa.derive_left view ~ly)

let prop_maxoa_left_explicit (raw, lx, h, ly) =
  let view = Compute.sequence (Frame.sliding ~l:lx ~h) raw in
  prop_against_direct raw (Frame.sliding ~l:ly ~h) (Maxoa.derive_left_explicit view ~ly)

let prop_maxoa_right (raw, lx, h, ly) =
  (* mirror the roles: view (h, lx), grow the upper bound *)
  let view = Compute.sequence (Frame.sliding ~l:h ~h:lx) raw in
  prop_against_direct raw (Frame.sliding ~l:h ~h:ly) (Maxoa.derive_right view ~hy:ly)

(* Double-sided: both deltas within their sound ranges. *)
let gen_maxoa_double_case =
  QCheck.Gen.(
    let* raw = gen_raw in
    let* lx = int_range 0 4 in
    let* hx = int_range 0 4 in
    let cap = lx + hx in
    if cap = 0 then return (raw, 0, 0, 0, 0)
    else
      let* dl = int_range 0 cap in
      let* dh = int_range 0 cap in
      return (raw, lx, hx, lx + dl, hx + dh))

let arb_maxoa_double =
  QCheck.make gen_maxoa_double_case ~print:(fun (raw, lx, hx, ly, hy) ->
      Printf.sprintf "%s (%d,%d) -> (%d,%d)" (print_raw raw) lx hx ly hy)

let prop_maxoa_double (raw, lx, hx, ly, hy) =
  let view = Compute.sequence (Frame.sliding ~l:lx ~h:hx) raw in
  prop_against_direct raw (Frame.sliding ~l:ly ~h:hy) (Maxoa.derive view ~ly ~hy)

let test_maxoa_paper_precondition () =
  Alcotest.(check bool) "ly within bound" true
    (Maxoa.paper_precondition_single ~lx:2 ~h:1 ~ly:4);
  (* ly = h - 1 + 2lx is the last admissible value *)
  Alcotest.(check bool) "boundary" true
    (Maxoa.paper_precondition_single ~lx:2 ~h:1 ~ly:4);
  Alcotest.(check bool) "too wide" false
    (Maxoa.paper_precondition_single ~lx:2 ~h:1 ~ly:5)

let test_maxoa_rejects_shrink () =
  let raw = raw_of_ints [ 1; 2; 3; 4; 5 ] in
  let view = Compute.sequence (Frame.sliding ~l:2 ~h:1) raw in
  let raised = ref false in
  (try ignore (Maxoa.derive view ~ly:1 ~hy:1)
   with Maxoa.Not_derivable _ -> raised := true);
  Alcotest.(check bool) "shrinking rejected" true !raised

let test_maxoa_rejects_too_wide () =
  let raw = raw_of_ints [ 1; 2; 3; 4; 5 ] in
  let view = Compute.sequence (Frame.sliding ~l:1 ~h:1) raw in
  let raised = ref false in
  (* ∆l = 3 > lx + h = 2 *)
  (try ignore (Maxoa.derive_left view ~ly:4)
   with Maxoa.Not_derivable _ -> raised := true);
  Alcotest.(check bool) "over-wide rejected" true !raised

(* Worked example of Fig. 6: ỹ = (3,1) from x̃ = (2,1). *)
let test_fig6_example () =
  let raw = raw_of_ints [ 2; 7; 1; 8; 2; 8; 1; 8; 2; 8; 4; 5 ] in
  let view = Compute.sequence (Frame.sliding ~l:2 ~h:1) raw in
  check_against_direct raw (Frame.sliding ~l:3 ~h:1) (Maxoa.derive_left view ~ly:3)

(* MIN/MAX derivation (§4.2). *)
let gen_minmax_case =
  QCheck.Gen.(
    let* raw = gen_raw in
    let* agg = oneofl [ Agg.Min; Agg.Max ] in
    let* lx = int_range 0 4 in
    let* hx = int_range 0 4 in
    let cap = lx + hx in
    let* dl = int_range 0 cap in
    let* dh = int_range 0 (cap - dl) in
    return (raw, agg, lx, hx, lx + dl, hx + dh))

let arb_minmax =
  QCheck.make gen_minmax_case ~print:(fun (raw, agg, lx, hx, ly, hy) ->
      Printf.sprintf "%s %s (%d,%d) -> (%d,%d)" (print_raw raw) (Agg.name agg) lx hx ly
        hy)

let prop_maxoa_minmax (raw, agg, lx, hx, ly, hy) =
  let view = Compute.sequence ~agg (Frame.sliding ~l:lx ~h:hx) raw in
  prop_against_direct ~agg raw (Frame.sliding ~l:ly ~h:hy)
    (Maxoa.derive_minmax view ~ly ~hy)

let test_minmax_coverage_rejected () =
  let raw = raw_of_ints [ 1; 2; 3; 4; 5; 6 ] in
  let view = Compute.sequence ~agg:Agg.Max (Frame.sliding ~l:1 ~h:1) raw in
  let raised = ref false in
  (* ∆l + ∆h = 3 > lx + hx = 2: the two view windows cannot cover *)
  (try ignore (Maxoa.derive_minmax view ~ly:3 ~hy:2)
   with Maxoa.Not_derivable _ -> raised := true);
  Alcotest.(check bool) "coverage rejected" true !raised

(* ---- §5: MinOA ---- *)

(* MinOA has no window-size precondition: any target shape works. *)
let gen_minoa_case =
  QCheck.Gen.(
    let* raw = gen_raw in
    let* lx = int_range 0 4 in
    let* hx = int_range 0 4 in
    let* ly = int_range 0 9 in
    let* hy = int_range 0 9 in
    return (raw, lx, hx, ly, hy))

let arb_minoa =
  QCheck.make gen_minoa_case ~print:(fun (raw, lx, hx, ly, hy) ->
      Printf.sprintf "%s (%d,%d) -> (%d,%d)" (print_raw raw) lx hx ly hy)

let prop_minoa (raw, lx, hx, ly, hy) =
  let view = Compute.sequence (Frame.sliding ~l:lx ~h:hx) raw in
  prop_against_direct raw (Frame.sliding ~l:ly ~h:hy) (Minoa.derive view ~l:ly ~h:hy)

let prop_minoa_explicit (raw, lx, hx, ly, hy) =
  let view = Compute.sequence (Frame.sliding ~l:lx ~h:hx) raw in
  prop_against_direct raw (Frame.sliding ~l:ly ~h:hy)
    (Minoa.derive_explicit view ~l:ly ~h:hy)

let test_minoa_rejects_minmax () =
  let raw = raw_of_ints [ 1; 2; 3 ] in
  let view = Compute.sequence ~agg:Agg.Min (Frame.sliding ~l:1 ~h:1) raw in
  let raised = ref false in
  (try ignore (Minoa.derive view ~l:2 ~h:1)
   with Minoa.Not_derivable _ -> raised := true);
  Alcotest.(check bool) "MIN rejected by MinOA" true !raised

(* MaxOA and MinOA agree wherever both apply (§7: no clear winner, same
   results). *)
let prop_maxoa_eq_minoa (raw, lx, hx, ly, hy) =
  let view = Compute.sequence (Frame.sliding ~l:lx ~h:hx) raw in
  Seqdata.equal ~eps:1e-6 (Maxoa.derive view ~ly ~hy) (Minoa.derive view ~l:ly ~h:hy)

(* ---- Chained derivation ----

   Derived sequences are complete, so they can serve as views themselves:
   view -> intermediate -> final must equal the direct computation. *)

let gen_chain_case =
  QCheck.Gen.(
    let* raw = gen_raw in
    let* l0 = int_range 0 3 in
    let* h0 = int_range 0 3 in
    let* dl1 = int_range 0 3 in
    let* dh1 = int_range 0 3 in
    let* dl2 = int_range 0 3 in
    let* dh2 = int_range 0 3 in
    return (raw, l0, h0, l0 + dl1, h0 + dh1, l0 + dl1 + dl2, h0 + dh1 + dh2))

let arb_chain =
  QCheck.make gen_chain_case ~print:(fun (raw, l0, h0, l1, h1, l2, h2) ->
      Printf.sprintf "%s (%d,%d)->(%d,%d)->(%d,%d)" (print_raw raw) l0 h0 l1 h1 l2 h2)

let prop_chained_minoa (raw, l0, h0, l1, h1, l2, h2) =
  let v0 = Compute.sequence (Frame.sliding ~l:l0 ~h:h0) raw in
  let v1 = Minoa.derive v0 ~l:l1 ~h:h1 in
  let v2 = Minoa.derive v1 ~l:l2 ~h:h2 in
  prop_against_direct raw (Frame.sliding ~l:l2 ~h:h2) v2

let prop_chained_mixed (raw, l0, h0, l1, h1, l2, h2) =
  (* MinOA step then, when admissible, a MaxOA step *)
  let v0 = Compute.sequence (Frame.sliding ~l:l0 ~h:h0) raw in
  let v1 = Minoa.derive v0 ~l:l1 ~h:h1 in
  let dl = l2 - l1 and dh = h2 - h1 in
  if (dl > 0 && dl > l1 + h1) || (dh > 0 && dh > h1 + l1) then true
  else
    prop_against_direct raw (Frame.sliding ~l:l2 ~h:h2) (Maxoa.derive v1 ~ly:l2 ~hy:h2)

let prop_chain_through_cumulative (raw, l0, h0, l1, h1, _, _) =
  (* sliding -> cumulative -> sliding round trip *)
  let v0 = Compute.sequence (Frame.sliding ~l:l0 ~h:h0) raw in
  let cum = Derive.cumulative_from_sliding v0 in
  prop_against_direct raw (Frame.sliding ~l:l1 ~h:h1)
    (Derive.sliding_from_cumulative cum ~l:l1 ~h:h1)

(* ---- Dispatcher ---- *)

let gen_dispatch_case =
  QCheck.Gen.(
    let* raw = gen_raw in
    let* view_frame =
      frequency
        [ (1, return Frame.Cumulative);
          (3, let* l = int_range 0 4 in let* h = int_range 0 4 in
              return (Frame.sliding ~l ~h)) ]
    in
    let* query_frame =
      frequency
        [ (1, return Frame.Cumulative);
          (3, let* l = int_range 0 8 in let* h = int_range 0 8 in
              return (Frame.sliding ~l ~h)) ]
    in
    return (raw, view_frame, query_frame))

let arb_dispatch =
  QCheck.make gen_dispatch_case ~print:(fun (raw, vf, qf) ->
      Printf.sprintf "%s view=%s query=%s" (print_raw raw) (Frame.to_string vf)
        (Frame.to_string qf))

let prop_dispatch (raw, view_frame, query_frame) =
  let view = Compute.sequence view_frame raw in
  match Derive.applicable_strategies ~view_frame ~view_agg:Agg.Sum ~query_frame with
  | [] -> true
  | strategies ->
    List.for_all
      (fun s ->
        prop_against_direct raw query_frame (Derive.run s view query_frame))
      strategies

let test_dispatch_strategies () =
  let open Derive in
  Alcotest.(check (list string)) "cumulative -> sliding" [ "cumulative-difference" ]
    (List.map strategy_name
       (applicable_strategies ~view_frame:Frame.Cumulative ~view_agg:Agg.Sum
          ~query_frame:(Frame.sliding ~l:2 ~h:1)));
  Alcotest.(check (list string)) "sliding growth" [ "MinOA"; "MaxOA" ]
    (List.map strategy_name
       (applicable_strategies ~view_frame:(Frame.sliding ~l:2 ~h:1) ~view_agg:Agg.Sum
          ~query_frame:(Frame.sliding ~l:3 ~h:2)));
  Alcotest.(check (list string)) "sliding shrink: MinOA only" [ "MinOA" ]
    (List.map strategy_name
       (applicable_strategies ~view_frame:(Frame.sliding ~l:2 ~h:1) ~view_agg:Agg.Sum
          ~query_frame:(Frame.sliding ~l:1 ~h:0)));
  Alcotest.(check (list string)) "min view" [ "MaxOA-minmax" ]
    (List.map strategy_name
       (applicable_strategies ~view_frame:(Frame.sliding ~l:2 ~h:1) ~view_agg:Agg.Min
          ~query_frame:(Frame.sliding ~l:3 ~h:1)))

(* ---- §6: position function and reductions ---- *)

let test_position_roundtrip () =
  let sp = Position.create [ 3; 4; 2 ] in
  Alcotest.(check int) "size" 24 (Position.size sp);
  Alcotest.(check int) "pos(1,1,1)" 1 (Position.pos sp [| 1; 1; 1 |]);
  Alcotest.(check int) "pos(3,4,2)" 24 (Position.pos sp [| 3; 4; 2 |]);
  Alcotest.(check int) "pos(2,4,2)" 16 (Position.pos sp [| 2; 4; 2 |]);
  for p = 1 to 24 do
    Alcotest.(check int) "roundtrip" p (Position.pos sp (Position.coords sp p))
  done

let test_position_groups () =
  let sp = Position.create [ 3; 4; 2 ] in
  (* dropping the last column: group of prefix (2,3) *)
  Alcotest.(check (pair int int)) "group range" (13, 14)
    (Position.group_range sp ~keep:2 (Position.pos (Position.reduced sp ~keep:2) [| 2; 3 |]));
  Alcotest.(check int) "first of prefix" 9 (Position.first_of_prefix sp [| 2 |]);
  Alcotest.(check int) "last of prefix" 16 (Position.last_of_prefix sp [| 2 |])

let test_position_invalid () =
  let sp = Position.create [ 2; 2 ] in
  let raised = ref false in
  (try ignore (Position.pos sp [| 3; 1 |])
   with Position.Invalid_coordinates _ -> raised := true);
  Alcotest.(check bool) "out of range" true !raised

(* Ordering reduction: collapse the last ordering column and check against
   direct computation on collapsed data. *)
let gen_ordering_case =
  QCheck.Gen.(
    let* d1 = int_range 1 5 in
    let* d2 = int_range 1 4 in
    let* d3 = int_range 1 3 in
    let size = d1 * d2 * d3 in
    let* data = array_size (return size) (map float_of_int (int_range (-20) 20)) in
    let* keep = int_range 1 2 in
    let* fl = int_range 0 3 in
    let* fh = int_range 0 3 in
    let* cum = bool in
    let target = if cum then Frame.Cumulative else Frame.sliding ~l:fl ~h:fh in
    let* vl = int_range 0 3 in
    let* vh = int_range 0 3 in
    return ([ d1; d2; d3 ], data, keep, Frame.sliding ~l:vl ~h:vh, target))

let arb_ordering =
  QCheck.make gen_ordering_case ~print:(fun (dims, _, keep, vf, tf) ->
      Printf.sprintf "dims=%s keep=%d view=%s target=%s"
        (String.concat "x" (List.map string_of_int dims))
        keep (Frame.to_string vf) (Frame.to_string tf))

let prop_ordering_reduction (dims, data, keep, view_frame, target_frame) =
  let sp = Position.create dims in
  let raw = Seqdata.raw_of_array data in
  let view = Reporting.compute view_frame sp [ ([ "p" ], raw) ] in
  let reduced = Reporting.ordering_reduction view ~keep ~target_frame in
  (* reference: collapse trailing columns by summing groups, then compute *)
  let red_space = Position.reduced sp ~keep in
  let coarse_n = Position.size red_space in
  let collapsed =
    Array.init coarse_n (fun i ->
        let a, b = Position.group_range sp ~keep (i + 1) in
        let s = ref 0. in
        for p = a to b do
          s := !s +. Seqdata.raw_get raw p
        done;
        !s)
  in
  let reference = Compute.naive target_frame (Seqdata.raw_of_array collapsed) in
  match Reporting.find_partition reduced [ "p" ] with
  | None -> false
  | Some seq -> Seqdata.equal ~eps:1e-6 reference seq

(* Partitioning reduction: merge partitions and check against direct
   computation on concatenated data. *)
let gen_partition_case =
  QCheck.Gen.(
    let* nparts = int_range 1 5 in
    let* plen = int_range 1 8 in
    let* parts =
      list_size (return nparts)
        (array_size (return plen) (map float_of_int (int_range (-20) 20)))
    in
    let* agg = oneofl [ Agg.Sum; Agg.Min; Agg.Max ] in
    let* cum = bool in
    let* l = int_range 0 4 in
    let* h = int_range 0 4 in
    let frame = if cum then Frame.Cumulative else Frame.sliding ~l ~h in
    (* group partitions pairwise: 0,1 -> A; 2,3 -> B; ... *)
    return (parts, agg, frame))

let arb_partition =
  QCheck.make gen_partition_case ~print:(fun (parts, agg, frame) ->
      Printf.sprintf "%d parts of %d, %s %s" (List.length parts)
        (match parts with p :: _ -> Array.length p | [] -> 0)
        (Agg.name agg) (Frame.to_string frame))

let prop_partitioning_reduction (parts, agg, frame) =
  let keyed =
    List.mapi (fun i data -> ([ string_of_int i ], Seqdata.raw_of_array data)) parts
  in
  let group key =
    match key with
    | [ k ] -> [ string_of_int (int_of_string k / 2) ]
    | _ -> key
  in
  let view = Reporting.compute ~agg frame (Position.create [ List.length parts |> fun _ ->
    (match parts with p :: _ -> Array.length p | [] -> 1) ]) keyed in
  let reduced = Reporting.partitioning_reduction view ~group in
  let reference = Reporting.recompute_merged ~agg frame keyed ~group in
  List.for_all2
    (fun (k1, s1) (k2, s2) -> k1 = k2 && Seqdata.equal ~eps:1e-6 s1 s2)
    reference (Reporting.partitions reduced)

let test_partitioning_requires_complete () =
  (* Incomplete sequence representations are rejected at construction
     time, so reporting views are complete by construction. *)
  let raw = raw_of_ints [ 1; 2; 3; 4 ] in
  let frame = Frame.sliding ~l:1 ~h:1 in
  let raised = ref false in
  (try
     (* body-only values for n=4 do not cover the complete range [0,6] *)
     ignore (Seqdata.make frame Agg.Sum ~n:4 ~lo:1 (Array.make 4 0.))
   with Invalid_argument _ -> raised := true);
  Alcotest.(check bool) "incomplete representation rejected" true !raised;
  Alcotest.(check bool) "complete by construction" true
    (Reporting.is_complete
       (Reporting.compute frame (Position.create [ 4 ]) [ ([ "a" ], raw) ]))

(* ---- Suite ---- *)

let () =
  Alcotest.run "derivation"
    [
      ( "cumulative",
        [
          Alcotest.test_case "fig5 example" `Quick test_fig5_example;
          qtest "sliding from cumulative" arb_cumulative_case prop_sliding_from_cumulative;
          qtest "cumulative from sliding" arb_cumulative_case prop_cumulative_from_sliding;
        ] );
      ( "maxoa",
        [
          Alcotest.test_case "paper precondition" `Quick test_maxoa_paper_precondition;
          Alcotest.test_case "rejects shrinking" `Quick test_maxoa_rejects_shrink;
          Alcotest.test_case "rejects over-wide" `Quick test_maxoa_rejects_too_wide;
          Alcotest.test_case "fig6 example" `Quick test_fig6_example;
          Alcotest.test_case "minmax coverage" `Quick test_minmax_coverage_rejected;
          qtest "single-sided left" arb_maxoa_left prop_maxoa_left;
          qtest "single-sided left, explicit form" arb_maxoa_left prop_maxoa_left_explicit;
          qtest "single-sided right (mirrored)" arb_maxoa_left prop_maxoa_right;
          qtest "double-sided" arb_maxoa_double prop_maxoa_double;
          qtest "MIN/MAX" arb_minmax prop_maxoa_minmax;
        ] );
      ( "minoa",
        [
          Alcotest.test_case "rejects MIN/MAX" `Quick test_minoa_rejects_minmax;
          qtest "fast form" arb_minoa prop_minoa;
          qtest "explicit form" arb_minoa prop_minoa_explicit;
          qtest "MaxOA = MinOA where both apply" arb_maxoa_double prop_maxoa_eq_minoa;
        ] );
      ( "chained",
        [
          qtest ~count:300 "MinOA twice" arb_chain prop_chained_minoa;
          qtest ~count:300 "MinOA then MaxOA" arb_chain prop_chained_mixed;
          qtest ~count:300 "through cumulative" arb_chain prop_chain_through_cumulative;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "strategy table" `Quick test_dispatch_strategies;
          qtest "all applicable strategies correct" arb_dispatch prop_dispatch;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "position roundtrip" `Quick test_position_roundtrip;
          Alcotest.test_case "position groups" `Quick test_position_groups;
          Alcotest.test_case "position invalid" `Quick test_position_invalid;
          Alcotest.test_case "complete by construction" `Quick
            test_partitioning_requires_complete;
          qtest ~count:200 "ordering reduction" arb_ordering prop_ordering_reduction;
          qtest ~count:200 "partitioning reduction" arb_partition
            prop_partitioning_reduction;
        ] );
    ]
