(* Tests of the relational substrate: values, expressions, indexes, joins,
   grouping and the basic operators. *)

open Rfview_relalg

let value_testable =
  Alcotest.testable Value.pp Value.equal

let check_value = Alcotest.check value_testable

(* ---- Values ---- *)

let test_value_compare () =
  Alcotest.(check int) "int" (-1) (Value.compare (Value.Int 1) (Value.Int 2));
  Alcotest.(check int) "cross numeric" 0 (Value.compare (Value.Int 2) (Value.Float 2.));
  Alcotest.(check int) "null first" (-1) (Value.compare Value.Null (Value.Int 0));
  Alcotest.(check bool) "sql null compare" true
    (Value.sql_compare Value.Null (Value.Int 1) = None)

let test_value_arith () =
  check_value "add ints" (Value.Int 7) (Value.add (Value.Int 3) (Value.Int 4));
  check_value "add mixed" (Value.Float 7.5) (Value.add (Value.Int 3) (Value.Float 4.5));
  check_value "null propagates" Value.Null (Value.add Value.Null (Value.Int 1));
  check_value "neg" (Value.Int (-3)) (Value.neg (Value.Int 3));
  check_value "div ints" (Value.Int 2) (Value.div (Value.Int 7) (Value.Int 3))

let test_floored_mod () =
  (* floored MOD keeps residue classes stable at negative positions *)
  check_value "positive" (Value.Int 2) (Value.modulo (Value.Int 7) (Value.Int 5));
  check_value "negative" (Value.Int 3) (Value.modulo (Value.Int (-7)) (Value.Int 5));
  Alcotest.(check bool) "class agreement" true
    (Value.modulo (Value.Int (-3)) (Value.Int 5) = Value.modulo (Value.Int 2) (Value.Int 5))

let test_dates () =
  let d = Value.date_of_ymd 2002 2 26 in
  Alcotest.(check (triple int int int)) "roundtrip" (2002, 2, 26) (Value.ymd_of_date d);
  Alcotest.(check int) "month" 2 (Value.date_month d);
  Alcotest.(check string) "render" "2002-02-26" (Value.date_to_string d);
  Alcotest.(check (option int)) "parse" (Some d) (Value.parse_date "2002-02-26");
  (* leap years *)
  Alcotest.(check bool) "2000 leap" true (Value.is_leap_year 2000);
  Alcotest.(check bool) "1900 not leap" false (Value.is_leap_year 1900);
  let a = Value.date_of_ymd 2001 12 31 and b = Value.date_of_ymd 2002 1 1 in
  Alcotest.(check int) "consecutive" 1 (b - a)

let prop_date_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"date roundtrip"
    QCheck.(make Gen.(int_range (-200000) 200000))
    (fun days ->
      let y, m, d = Value.ymd_of_date days in
      Value.date_of_ymd y m d = days)

(* ---- Expressions ---- *)

let schema2 =
  Schema.make [ Schema.column "a" Dtype.Int; Schema.column "b" Dtype.Float ]

let row2 a b : Row.t = [| Value.Int a; Value.Float b |]

let test_expr_eval () =
  let e = Expr.Binop (Expr.Add, Expr.Col 0, Expr.Const (Value.Int 10)) in
  check_value "col + const" (Value.Int 13) (Expr.eval (row2 3 0.) e);
  let c =
    Expr.Case
      ( [ (Expr.Binop (Expr.Gt, Expr.Col 0, Expr.Const (Value.Int 0)), Expr.Const (Value.String "pos")) ],
        Some (Expr.Const (Value.String "nonpos")) )
  in
  check_value "case then" (Value.String "pos") (Expr.eval (row2 1 0.) c);
  check_value "case else" (Value.String "nonpos") (Expr.eval (row2 (-1) 0.) c)

let test_expr_three_valued () =
  let null = Expr.Const Value.Null in
  let tru = Expr.Const (Value.Bool true) and fls = Expr.Const (Value.Bool false) in
  check_value "null and false" (Value.Bool false)
    (Expr.eval [||] (Expr.Binop (Expr.And, null, fls)));
  check_value "null and true" Value.Null
    (Expr.eval [||] (Expr.Binop (Expr.And, null, tru)));
  check_value "null or true" (Value.Bool true)
    (Expr.eval [||] (Expr.Binop (Expr.Or, null, tru)));
  check_value "not null" Value.Null (Expr.eval [||] (Expr.Unop (Expr.Not, null)));
  Alcotest.(check bool) "filter drops unknown" false (Expr.holds [||] null)

let test_expr_in_between () =
  let e = Expr.In_list (Expr.Col 0, [ Expr.Const (Value.Int 1); Expr.Const (Value.Int 3) ]) in
  check_value "in hit" (Value.Bool true) (Expr.eval (row2 3 0.) e);
  check_value "in miss" (Value.Bool false) (Expr.eval (row2 2 0.) e);
  let b = Expr.Between (Expr.Col 0, Expr.Const (Value.Int 2), Expr.Const (Value.Int 4)) in
  check_value "between" (Value.Bool true) (Expr.eval (row2 3 0.) b);
  check_value "between lo edge" (Value.Bool true) (Expr.eval (row2 2 0.) b);
  check_value "between miss" (Value.Bool false) (Expr.eval (row2 5 0.) b)

let test_expr_functions () =
  let coalesce =
    Expr.Call (Expr.Coalesce, [ Expr.Const Value.Null; Expr.Const (Value.Int 5) ])
  in
  check_value "coalesce" (Value.Int 5) (Expr.eval [||] coalesce);
  let m =
    Expr.Call (Expr.Month, [ Expr.Const (Value.Date (Value.date_of_ymd 2002 3 1)) ])
  in
  check_value "month" (Value.Int 3) (Expr.eval [||] m);
  check_value "abs" (Value.Int 4)
    (Expr.eval [||] (Expr.Call (Expr.Abs, [ Expr.Const (Value.Int (-4)) ])));
  check_value "nullif equal" Value.Null
    (Expr.eval [||] (Expr.Call (Expr.Nullif, [ Expr.Const (Value.Int 1); Expr.Const (Value.Int 1) ])))

let dtype_testable = Alcotest.testable Dtype.pp Dtype.equal

let test_expr_typing () =
  Alcotest.(check (option dtype_testable))
    "int + float" (Some Dtype.Float)
    (Expr.infer_type schema2 (Expr.Binop (Expr.Add, Expr.Col 0, Expr.Col 1)));
  Alcotest.(check bool) "conjuncts split" true
    (List.length
       (Expr.conjuncts
          (Expr.Binop
             ( Expr.And,
               Expr.Binop (Expr.And, Expr.Const (Value.Bool true), Expr.Const (Value.Bool true)),
               Expr.Const (Value.Bool true) )))
    = 3)

(* ---- Schema ---- *)

let test_schema_lookup () =
  let s =
    Schema.make
      [ Schema.column ~rel:"s1" "pos" Dtype.Int;
        Schema.column ~rel:"s1" "val" Dtype.Float;
        Schema.column ~rel:"s2" "pos" Dtype.Int ]
  in
  Alcotest.(check int) "qualified" 2 (Schema.find s ~rel:"s2" "pos");
  Alcotest.(check int) "unqualified unique" 1 (Schema.find s "val");
  Alcotest.(check bool) "ambiguous" true
    (match Schema.find s "pos" with
     | exception Schema.Ambiguous_column _ -> true
     | _ -> false);
  Alcotest.(check bool) "unknown" true
    (match Schema.find s "nope" with
     | exception Schema.Unknown_column _ -> true
     | _ -> false);
  Alcotest.(check int) "case insensitive" 1 (Schema.find s "VAL")

(* ---- Index ---- *)

let rows_of_ints ints =
  Array.of_list (List.map (fun (p, v) -> [| Value.Int p; Value.Float v |]) ints)

let test_index_eq () =
  let rows = rows_of_ints [ (1, 10.); (2, 20.); (2, 21.); (5, 50.) ] in
  List.iter
    (fun kind ->
      let idx = Index.build kind rows ~key_col:0 in
      Alcotest.(check (list int)) "eq 2" [ 1; 2 ]
        (List.sort compare (Index.lookup_eq idx (Value.Int 2)));
      Alcotest.(check (list int)) "eq missing" [] (Index.lookup_eq idx (Value.Int 3));
      Alcotest.(check (list int)) "null key" [] (Index.lookup_eq idx Value.Null))
    [ Index.Hash; Index.Ordered ]

let test_index_range () =
  let rows = rows_of_ints [ (1, 10.); (2, 20.); (3, 30.); (5, 50.); (8, 80.) ] in
  let idx = Index.build Index.Ordered rows ~key_col:0 in
  Alcotest.(check (list int)) "closed range" [ 1; 2; 3 ]
    (List.sort compare (Index.lookup_range idx ~lo:(Value.Int 2) ~hi:(Value.Int 5) ()));
  Alcotest.(check (list int)) "open low" [ 0; 1 ]
    (List.sort compare (Index.lookup_range idx ~hi:(Value.Int 2) ()));
  Alcotest.(check (list int)) "open high" [ 3; 4 ]
    (List.sort compare (Index.lookup_range idx ~lo:(Value.Int 4) ()));
  Alcotest.(check (list int)) "empty" []
    (Index.lookup_range idx ~lo:(Value.Int 6) ~hi:(Value.Int 7) ())

(* ---- Joins ---- *)

let rel schema rows = Relation.of_array schema (Array.of_list rows)

let seq_schema name =
  Schema.make
    [ Schema.column ~rel:name "pos" Dtype.Int; Schema.column ~rel:name "val" Dtype.Float ]

let seq_rel name data =
  rel (seq_schema name) (List.mapi (fun i v -> [| Value.Int (i + 1); Value.Float v |]) data)

let test_joins_agree () =
  (* the three algorithms must produce the same bag on an equi-join *)
  let l = seq_rel "s1" [ 10.; 20.; 30.; 40. ] in
  let r = seq_rel "s2" [ 1.; 2.; 3.; 4. ] in
  let cond = Expr.Binop (Expr.Eq, Expr.Col 0, Expr.Col 2) in
  let nl = Joinop.nested_loop Joinop.Inner l r cond in
  let hash =
    Joinop.hash_join Joinop.Inner ~left:l ~right:r ~left_keys:[ Expr.Col 0 ]
      ~right_keys:[ Expr.Col 0 ] ()
  in
  let idx = Index.build Index.Ordered (Relation.rows r) ~key_col:0 in
  let ij =
    Joinop.index_join Joinop.Inner ~left:l ~right:r ~index:idx
      ~probe:(Joinop.Probe_eq (Expr.Col 0)) ()
  in
  Alcotest.(check bool) "hash = nl" true (Relation.equal_bag nl hash);
  Alcotest.(check bool) "index = nl" true (Relation.equal_bag nl ij);
  Alcotest.(check int) "cardinality" 4 (Relation.cardinality nl)

let test_left_outer () =
  let l = seq_rel "s1" [ 10.; 20.; 30. ] in
  let r =
    rel (seq_schema "s2") [ [| Value.Int 2; Value.Float 200. |] ]
  in
  let cond = Expr.Binop (Expr.Eq, Expr.Col 0, Expr.Col 2) in
  let nl = Joinop.nested_loop Joinop.Left_outer l r cond in
  Alcotest.(check int) "all left rows kept" 3 (Relation.cardinality nl);
  let nulls =
    Array.to_list (Relation.rows nl)
    |> List.filter (fun row -> Value.is_null (Row.get row 2))
  in
  Alcotest.(check int) "two unmatched" 2 (List.length nulls);
  (* agreement with hash and index variants *)
  let hash =
    Joinop.hash_join Joinop.Left_outer ~left:l ~right:r ~left_keys:[ Expr.Col 0 ]
      ~right_keys:[ Expr.Col 0 ] ()
  in
  Alcotest.(check bool) "hash left outer" true (Relation.equal_bag nl hash);
  let idx = Index.build Index.Hash (Relation.rows r) ~key_col:0 in
  let ij =
    Joinop.index_join Joinop.Left_outer ~left:l ~right:r ~index:idx
      ~probe:(Joinop.Probe_eq (Expr.Col 0)) ()
  in
  Alcotest.(check bool) "index left outer" true (Relation.equal_bag nl ij)

let test_range_join () =
  (* the Fig. 2 self-join shape: s2.pos BETWEEN s1.pos-1 AND s1.pos+1 *)
  let s = seq_rel "s1" [ 1.; 2.; 3.; 4.; 5. ] in
  let cond =
    Expr.Between
      ( Expr.Col 2,
        Expr.Binop (Expr.Sub, Expr.Col 0, Expr.Const (Value.Int 1)),
        Expr.Binop (Expr.Add, Expr.Col 0, Expr.Const (Value.Int 1)) )
  in
  let nl = Joinop.nested_loop Joinop.Inner s s cond in
  let idx = Index.build Index.Ordered (Relation.rows s) ~key_col:0 in
  let ij =
    Joinop.index_join Joinop.Inner ~left:s ~right:s ~index:idx
      ~probe:
        (Joinop.Probe_range
           ( Some (Expr.Binop (Expr.Sub, Expr.Col 0, Expr.Const (Value.Int 1))),
             Some (Expr.Binop (Expr.Add, Expr.Col 0, Expr.Const (Value.Int 1))) ))
      ()
  in
  Alcotest.(check bool) "range join = nested loop" true (Relation.equal_bag nl ij);
  Alcotest.(check int) "cardinality 3n-2" 13 (Relation.cardinality nl)

let test_probe_in_dedup () =
  let s = seq_rel "s" [ 1.; 2. ] in
  let idx = Index.build Index.Hash (Relation.rows s) ~key_col:0 in
  (* both IN items evaluate to the same key: must not double-count *)
  let ij =
    Joinop.index_join Joinop.Inner ~left:s ~right:s ~index:idx
      ~probe:(Joinop.Probe_in [ Expr.Col 0; Expr.Col 0 ])
      ()
  in
  Alcotest.(check int) "no duplicates" 2 (Relation.cardinality ij)

(* ---- Grouping ---- *)

let test_group_by () =
  let schema =
    Schema.make [ Schema.column "g" Dtype.String; Schema.column "v" Dtype.Int ]
  in
  let r =
    rel schema
      [
        [| Value.String "a"; Value.Int 1 |];
        [| Value.String "b"; Value.Int 10 |];
        [| Value.String "a"; Value.Int 2 |];
        [| Value.String "b"; Value.Null |];
      ]
  in
  let out =
    Groupop.group_by ~group:[ Expr.Col 0 ]
      ~aggs:
        [
          { Groupop.kind = Aggregate.Sum; arg = Expr.Col 1; name = "s" };
          { Groupop.kind = Aggregate.Count; arg = Expr.Col 1; name = "c" };
          Groupop.star_count "n";
        ]
      r
  in
  let sorted = Relation.sorted_by_all out in
  let rows = Relation.to_list sorted in
  Alcotest.(check int) "two groups" 2 (List.length rows);
  (match rows with
   | [ ra; rb ] ->
     check_value "sum a" (Value.Int 3) (Row.get ra 1);
     check_value "count a" (Value.Int 2) (Row.get ra 2);
     check_value "star a" (Value.Int 2) (Row.get ra 3);
     check_value "sum b (null skipped)" (Value.Int 10) (Row.get rb 1);
     check_value "count b" (Value.Int 1) (Row.get rb 2);
     check_value "star b" (Value.Int 2) (Row.get rb 3)
   | _ -> Alcotest.fail "expected two rows")

let test_global_aggregate_empty () =
  let schema = Schema.make [ Schema.column "v" Dtype.Int ] in
  let out =
    Groupop.group_by
      ~aggs:[ { Groupop.kind = Aggregate.Sum; arg = Expr.Col 0; name = "s" };
              Groupop.star_count "n" ]
      (rel schema [])
  in
  Alcotest.(check int) "one row" 1 (Relation.cardinality out);
  let row = (Relation.rows out).(0) in
  check_value "sum null" Value.Null (Row.get row 0);
  check_value "count 0" (Value.Int 0) (Row.get row 1)

(* ---- Basic ops ---- *)

let test_ops () =
  let s = seq_rel "s" [ 5.; 1.; 3.; 1. ] in
  let filtered =
    Ops.filter (Expr.Binop (Expr.Gt, Expr.Col 1, Expr.Const (Value.Float 1.))) s
  in
  Alcotest.(check int) "filter" 2 (Relation.cardinality filtered);
  let proj = Ops.project [ (Expr.Col 1, "v") ] s in
  Alcotest.(check int) "project arity" 1 (Schema.arity (Relation.schema proj));
  let sorted = Sortop.sort [ Sortop.key (Expr.Col 1) ] s in
  check_value "sorted first" (Value.Float 1.) (Row.get (Relation.rows sorted).(0) 1);
  let desc = Sortop.sort [ Sortop.key ~asc:false (Expr.Col 1) ] s in
  check_value "sorted desc first" (Value.Float 5.) (Row.get (Relation.rows desc).(0) 1);
  let dis = Ops.distinct (Ops.project [ (Expr.Col 1, "v") ] s) in
  Alcotest.(check int) "distinct" 3 (Relation.cardinality dis);
  Alcotest.(check int) "limit" 2 (Relation.cardinality (Ops.limit 2 s));
  Alcotest.(check int) "union all" 8 (Relation.cardinality (Ops.union_all s s));
  Alcotest.(check int) "union" 4 (Relation.cardinality (Ops.union s s))

let () =
  Alcotest.run "relalg"
    [
      ( "value",
        [
          Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "arith" `Quick test_value_arith;
          Alcotest.test_case "floored mod" `Quick test_floored_mod;
          Alcotest.test_case "dates" `Quick test_dates;
          QCheck_alcotest.to_alcotest prop_date_roundtrip;
        ] );
      ( "expr",
        [
          Alcotest.test_case "eval" `Quick test_expr_eval;
          Alcotest.test_case "three-valued" `Quick test_expr_three_valued;
          Alcotest.test_case "in/between" `Quick test_expr_in_between;
          Alcotest.test_case "functions" `Quick test_expr_functions;
          Alcotest.test_case "typing" `Quick test_expr_typing;
        ] );
      ("schema", [ Alcotest.test_case "lookup" `Quick test_schema_lookup ]);
      ( "index",
        [
          Alcotest.test_case "equality" `Quick test_index_eq;
          Alcotest.test_case "range" `Quick test_index_range;
        ] );
      ( "join",
        [
          Alcotest.test_case "algorithms agree" `Quick test_joins_agree;
          Alcotest.test_case "left outer" `Quick test_left_outer;
          Alcotest.test_case "range join" `Quick test_range_join;
          Alcotest.test_case "IN-probe dedup" `Quick test_probe_in_dedup;
        ] );
      ( "group",
        [
          Alcotest.test_case "group by" `Quick test_group_by;
          Alcotest.test_case "global empty" `Quick test_global_aggregate_empty;
        ] );
      ("ops", [ Alcotest.test_case "basics" `Quick test_ops ]);
    ]
