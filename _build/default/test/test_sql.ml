(* Tests of the SQL layer: lexer, parser, pretty-printer round-trips. *)

module Sql = Rfview_sql
module Ast = Sql.Ast

let parse = Sql.Parser.statement
let parse_q = Sql.Parser.query
let parse_e = Sql.Parser.expression

(* ---- Lexer ---- *)

let test_lexer_basics () =
  let toks = Sql.Lexer.tokenize "SELECT a, 1.5 FROM t -- comment\nWHERE x <> 'it''s'" in
  let kinds = List.map (fun l -> l.Sql.Lexer.token) toks in
  Alcotest.(check int) "token count" 11 (List.length kinds);
  (match kinds with
   | Sql.Token.Ident "SELECT" :: Sql.Token.Ident "a" :: Sql.Token.Comma
     :: Sql.Token.Float_lit 1.5 :: Sql.Token.Ident "FROM" :: Sql.Token.Ident "t"
     :: Sql.Token.Ident "WHERE" :: Sql.Token.Ident "x" :: Sql.Token.Neq
     :: Sql.Token.String_lit "it's" :: Sql.Token.Eof :: _ -> ()
   | _ -> Alcotest.fail "unexpected token stream")

let test_lexer_block_comment () =
  let toks = Sql.Lexer.tokenize "SELECT /* hi */ 1" in
  Alcotest.(check int) "tokens" 3 (List.length toks)

let test_lexer_errors () =
  Alcotest.(check bool) "unterminated string" true
    (match Sql.Lexer.tokenize "SELECT 'oops" with
     | exception Sql.Lexer.Lex_error _ -> true
     | _ -> false);
  Alcotest.(check bool) "bad char" true
    (match Sql.Lexer.tokenize "SELECT #" with
     | exception Sql.Lexer.Lex_error _ -> true
     | _ -> false)

(* ---- Parser: expressions ---- *)

let test_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3) *)
  match parse_e "1 + 2 * 3" with
  | Ast.Binary (Ast.Add, Ast.Lit (Ast.L_int 1), Ast.Binary (Ast.Mul, _, _)) -> ()
  | _ -> Alcotest.fail "precedence broken"

let test_bool_precedence () =
  (* a OR b AND c parses as a OR (b AND c) *)
  match parse_e "a OR b AND c" with
  | Ast.Binary (Ast.Or, Ast.Column (None, "a"), Ast.Binary (Ast.And, _, _)) -> ()
  | _ -> Alcotest.fail "boolean precedence broken"

let test_unary_minus () =
  match parse_e "-x + 3" with
  | Ast.Binary (Ast.Add, Ast.Neg (Ast.Column (None, "x")), Ast.Lit (Ast.L_int 3)) -> ()
  | _ -> Alcotest.fail "unary minus broken"

let test_case_expr () =
  match parse_e "CASE WHEN a = 1 THEN 'x' ELSE 'y' END" with
  | Ast.Case ([ (Ast.Binary (Ast.Eq, _, _), Ast.Lit (Ast.L_string "x")) ],
              Some (Ast.Lit (Ast.L_string "y"))) -> ()
  | _ -> Alcotest.fail "case broken"

let test_between_in () =
  (match parse_e "x BETWEEN 1 AND 3" with
   | Ast.Between (_, Ast.Lit (Ast.L_int 1), Ast.Lit (Ast.L_int 3)) -> ()
   | _ -> Alcotest.fail "between broken");
  (match parse_e "x IN (1, 2, 3)" with
   | Ast.In_list (_, [ _; _; _ ]) -> ()
   | _ -> Alcotest.fail "in broken");
  (match parse_e "x NOT IN (1)" with
   | Ast.Not (Ast.In_list _) -> ()
   | _ -> Alcotest.fail "not in broken");
  (match parse_e "x IS NOT NULL" with
   | Ast.Is_not_null _ -> ()
   | _ -> Alcotest.fail "is not null broken")

let test_qualified_and_functions () =
  (match parse_e "s1.pos" with
   | Ast.Column (Some "s1", "pos") -> ()
   | _ -> Alcotest.fail "qualified column broken");
  (match parse_e "MOD(s1.pos, 5)" with
   | Ast.Call ("MOD", [ _; _ ]) -> ()
   | _ -> Alcotest.fail "function call broken");
  (match parse_e "COALESCE(val, 0)" with
   | Ast.Call ("COALESCE", [ _; _ ]) -> ()
   | _ -> Alcotest.fail "coalesce broken");
  (match parse_e "DATE '2002-02-26'" with
   | Ast.Lit (Ast.L_date "2002-02-26") -> ()
   | _ -> Alcotest.fail "date literal broken")

(* ---- Parser: window functions (the paper's Fig. 1 syntax) ---- *)

let test_window_cumulative () =
  match parse_e "SUM(v) OVER (ORDER BY d ROWS UNBOUNDED PRECEDING)" with
  | Ast.Window
      {
        w_func = "SUM";
        w_args = [ Ast.Column (None, "v") ];
        w_partition = [];
        w_order = [ { o_expr = Ast.Column (None, "d"); o_asc = true } ];
        w_frame = Some { frame_mode = Ast.Frame_rows; frame_lo = Ast.Unbounded_preceding; frame_hi = Ast.Current_row };
      } -> ()
  | _ -> Alcotest.fail "cumulative window broken"

let test_window_sliding () =
  match
    parse_e
      "AVG(v) OVER (PARTITION BY m, r ORDER BY d ROWS BETWEEN 1 PRECEDING AND 1 \
       FOLLOWING)"
  with
  | Ast.Window
      {
        w_func = "AVG";
        w_partition = [ _; _ ];
        w_frame = Some { frame_lo = Ast.Preceding 1; frame_hi = Ast.Following 1; _ };
        _;
      } -> ()
  | _ -> Alcotest.fail "sliding window broken"

let test_window_prospective () =
  match parse_e "SUM(v) OVER (ORDER BY d ROWS BETWEEN CURRENT ROW AND 6 FOLLOWING)" with
  | Ast.Window { w_frame = Some { frame_lo = Ast.Current_row; frame_hi = Ast.Following 6; _ }; _ }
    -> ()
  | _ -> Alcotest.fail "prospective window broken"

let test_intro_query_parses () =
  (* the paper's introduction query, almost verbatim *)
  let q =
    "SELECT c_date, c_transaction, \
     SUM(c_transaction) OVER (ORDER BY c_date ROWS UNBOUNDED PRECEDING) AS cum_sum_total, \
     SUM(c_transaction) OVER (PARTITION BY month(c_date) ORDER BY c_date \
     ROWS UNBOUNDED PRECEDING) AS cum_sum_month, \
     AVG(c_transaction) OVER (PARTITION BY month(c_date), l_region ORDER BY c_date \
     ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS c_3mvg_avg, \
     AVG(c_transaction) OVER (ORDER BY c_date \
     ROWS BETWEEN CURRENT ROW AND 6 FOLLOWING) AS c_7mvg_avg \
     FROM c_transactions, l_locations \
     WHERE c_locid = l_locid AND c_custid = 4711"
  in
  match (parse_q q).Ast.body with
  | Ast.Select s ->
    Alcotest.(check int) "six select items" 6 (List.length s.Ast.items);
    Alcotest.(check int) "two tables" 2 (List.length s.Ast.from);
    let windows =
      List.concat_map
        (function Ast.Sel_expr (e, _) -> Ast.window_fns [] e | _ -> [])
        s.Ast.items
    in
    Alcotest.(check int) "four reporting functions" 4 (List.length windows)
  | _ -> Alcotest.fail "expected select"

(* ---- Parser: queries and statements ---- *)

let test_joins () =
  let q = parse_q "SELECT * FROM a LEFT OUTER JOIN (SELECT x FROM b) c ON a.x = c.x" in
  match q.Ast.body with
  | Ast.Select { from = [ Ast.Join { kind = Ast.Join_left; right = Ast.Subquery _; _ } ]; _ }
    -> ()
  | _ -> Alcotest.fail "left outer join broken"

let test_union_group () =
  let q =
    parse_q
      "SELECT pos, SUM(sval) AS val FROM (SELECT 1 AS pos, 2 AS sval UNION ALL SELECT \
       1, 3) u GROUP BY pos"
  in
  match q.Ast.body with
  | Ast.Select { from = [ Ast.Subquery { query = { body = Ast.Union { all = true; _ }; _ }; _ } ];
                 group_by = [ _ ]; _ } -> ()
  | _ -> Alcotest.fail "union in subquery broken"

let test_statements () =
  (match parse "CREATE TABLE t (pos INT, val FLOAT, name VARCHAR(20))" with
   | Ast.St_create_table { columns = [ _; _; _ ]; _ } -> ()
   | _ -> Alcotest.fail "create table broken");
  (match parse "CREATE INDEX i ON t (pos)" with
   | Ast.St_create_index { ordered = true; _ } -> ()
   | _ -> Alcotest.fail "create index broken");
  (match parse "CREATE INDEX i ON t (pos) USING HASH" with
   | Ast.St_create_index { ordered = false; _ } -> ()
   | _ -> Alcotest.fail "hash index broken");
  (match parse "CREATE MATERIALIZED VIEW v AS SELECT pos FROM t" with
   | Ast.St_create_view { materialized = true; _ } -> ()
   | _ -> Alcotest.fail "matview broken");
  (match parse "INSERT INTO t (pos, val) VALUES (1, 2.5), (2, 3.5)" with
   | Ast.St_insert { rows = [ _; _ ]; columns = [ _; _ ]; _ } -> ()
   | _ -> Alcotest.fail "insert broken");
  (match parse "UPDATE t SET val = val + 1 WHERE pos = 3" with
   | Ast.St_update { assignments = [ _ ]; where = Some _; _ } -> ()
   | _ -> Alcotest.fail "update broken");
  (match parse "DELETE FROM t WHERE pos = 3" with
   | Ast.St_delete { where = Some _; _ } -> ()
   | _ -> Alcotest.fail "delete broken");
  (match parse "DROP TABLE IF EXISTS t" with
   | Ast.St_drop_table { if_exists = true; _ } -> ()
   | _ -> Alcotest.fail "drop broken");
  (match parse "EXPLAIN SELECT 1" with
   | Ast.St_explain (Ast.St_query _) -> ()
   | _ -> Alcotest.fail "explain broken");
  match Sql.Parser.statements "SELECT 1; SELECT 2; DELETE FROM t" with
  | [ _; _; _ ] -> ()
  | _ -> Alcotest.fail "script broken"

let test_parse_errors () =
  let fails sql =
    match parse sql with
    | exception Sql.Parser.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "missing from item" true (fails "SELECT a FROM");
  Alcotest.(check bool) "bad frame" true
    (fails "SELECT SUM(v) OVER (ORDER BY d ROWS BETWEEN 1 AND 2) FROM t");
  Alcotest.(check bool) "trailing garbage" true (fails "SELECT 1 extra stuff here ,");
  Alcotest.(check bool) "unknown window function" true
    (fails "SELECT NTILE(4) OVER (ORDER BY d) FROM t")

(* ---- Pretty round-trip ---- *)

let roundtrip_cases =
  [
    "SELECT pos, val FROM seq WHERE pos > 3 ORDER BY pos LIMIT 10";
    "SELECT DISTINCT a FROM t GROUP BY a HAVING COUNT(*) > 1";
    "SELECT s1.pos AS pos, SUM(s2.val) AS val FROM seq s1, seq s2 WHERE s2.pos \
     BETWEEN s1.pos - 1 AND s1.pos + 1 GROUP BY s1.pos";
    "SELECT pos, SUM(val) OVER (PARTITION BY g ORDER BY pos ROWS BETWEEN 2 \
     PRECEDING AND 1 FOLLOWING) AS w FROM seq";
    "SELECT a FROM t UNION ALL SELECT b FROM u";
    "SELECT s.pos AS pos, s.val + COALESCE(c.val, 0) AS val FROM matseq s LEFT \
     OUTER JOIN (SELECT 1 AS pos, 2.0 AS val) c ON c.pos = s.pos";
    "SELECT CASE WHEN MOD(pos, 4) = 0 THEN val ELSE (-1) * val END AS v FROM seq";
    "SELECT x, COUNT(*) AS n FROM t WHERE x IS NOT NULL GROUP BY x";
  ]

let test_roundtrip () =
  List.iter
    (fun sql ->
      let ast1 = parse sql in
      let printed = Sql.Pretty.statement ast1 in
      let ast2 =
        try parse printed
        with Sql.Parser.Parse_error m ->
          Alcotest.failf "re-parse failed for %s: %s" printed m
      in
      let printed2 = Sql.Pretty.statement ast2 in
      Alcotest.(check string) ("stable print: " ^ sql) printed printed2)
    roundtrip_cases

(* Generated derivation patterns parse. *)
let test_generated_sql_parses () =
  let module Core = Rfview_core in
  List.iter
    (fun sql ->
      match parse sql with
      | Ast.St_query _ -> ()
      | _ -> Alcotest.failf "expected query: %s" sql
      | exception Sql.Parser.Parse_error m -> Alcotest.failf "parse error: %s (%s)" m sql)
    [
      Core.Sqlgen.native_window (Core.Frame.sliding ~l:1 ~h:1);
      Core.Sqlgen.fig2_self_join (Core.Frame.sliding ~l:2 ~h:1);
      Core.Sqlgen.fig2_self_join Core.Frame.Cumulative;
      Core.Sqlgen.fig4_reconstruct ();
      Core.Sqlgen.maxoa ~lx:2 ~h:1 ~ly:3 `Disjunctive;
      Core.Sqlgen.maxoa ~lx:2 ~h:1 ~ly:3 `Union;
      Core.Sqlgen.minoa ~lx:2 ~hx:1 ~ly:3 ~hy:2 `Disjunctive;
      Core.Sqlgen.minoa ~lx:2 ~hx:1 ~ly:3 ~hy:2 `Union;
    ]

(* ---- Random-AST round trip ----

   Generate random expression ASTs, pretty-print and re-parse them; the
   result must be structurally equal (modulo case, which ast_equal
   ignores).  Exercises precedence and parenthesization corners the fixed
   cases cannot. *)

let gen_expr : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let lit =
    oneof
      [
        map (fun i -> Ast.Lit (Ast.L_int i)) (int_range 0 99);
        map (fun f -> Ast.Lit (Ast.L_float (float_of_int f /. 4.))) (int_range 1 99);
        map (fun s -> Ast.Lit (Ast.L_string s)) (oneofl [ "x"; "it's"; "a,b"; "" ]);
        return (Ast.Lit Ast.L_null);
        return (Ast.Lit (Ast.L_bool true));
      ]
  in
  let col =
    oneof
      [
        map (fun c -> Ast.Column (None, c)) (oneofl [ "a"; "b"; "pos"; "val" ]);
        map (fun c -> Ast.Column (Some "t", c)) (oneofl [ "a"; "b" ]);
      ]
  in
  let rec expr n =
    if n = 0 then oneof [ lit; col ]
    else
      let sub = expr (n - 1) in
      oneof
        [
          lit;
          col;
          (let* op =
             oneofl
               [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Eq; Ast.Neq;
                 Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.And; Ast.Or ]
           in
           let* a = sub in
           let* b = sub in
           return (Ast.Binary (op, a, b)));
          map (fun e -> Ast.Neg e) sub;
          map (fun e -> Ast.Not e) sub;
          (let* c = sub in
           let* v = sub in
           let* e = option sub in
           return (Ast.Case ([ (c, v) ], e)));
          (let* f = oneofl [ "COALESCE"; "ABS"; "LEAST" ] in
           let* args = list_size (int_range 1 3) sub in
           return (Ast.Call (f, args)));
          (let* e = sub in
           let* items = list_size (int_range 1 3) sub in
           return (Ast.In_list (e, items)));
          (let* e = sub in
           let* lo = sub in
           let* hi = sub in
           return (Ast.Between (e, lo, hi)));
          map (fun e -> Ast.Is_null e) sub;
          map (fun e -> Ast.Is_not_null e) sub;
        ]
  in
  let* depth = int_range 0 3 in
  expr depth

let prop_ast_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"random AST: pretty |> parse = id"
    (QCheck.make gen_expr ~print:Sql.Pretty.expr)
    (fun ast ->
      let printed = Sql.Pretty.expr ast in
      match Sql.Parser.expression printed with
      | parsed -> Rfview_planner.Binder.ast_equal ast parsed
      | exception _ -> false)

let () =
  Alcotest.run "sql"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "block comment" `Quick test_lexer_block_comment;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "expr",
        [
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "bool precedence" `Quick test_bool_precedence;
          Alcotest.test_case "unary minus" `Quick test_unary_minus;
          Alcotest.test_case "case" `Quick test_case_expr;
          Alcotest.test_case "between/in/is" `Quick test_between_in;
          Alcotest.test_case "qualified/functions" `Quick test_qualified_and_functions;
        ] );
      ( "window",
        [
          Alcotest.test_case "cumulative" `Quick test_window_cumulative;
          Alcotest.test_case "sliding" `Quick test_window_sliding;
          Alcotest.test_case "prospective" `Quick test_window_prospective;
          Alcotest.test_case "intro query" `Quick test_intro_query_parses;
        ] );
      ( "statements",
        [
          Alcotest.test_case "joins" `Quick test_joins;
          Alcotest.test_case "union + group" `Quick test_union_group;
          Alcotest.test_case "ddl/dml" `Quick test_statements;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "round trip" `Quick test_roundtrip;
          QCheck_alcotest.to_alcotest prop_ast_roundtrip;
          Alcotest.test_case "generated patterns parse" `Quick test_generated_sql_parses;
        ] );
    ]
