(* Tests of the sequence core: frames, computation strategies, incremental
   maintenance and raw-value reconstruction (paper §2-§3). *)

open Rfview_core

let approx ?(eps = 1e-6) a b =
  (Float.is_nan a && Float.is_nan b) || Float.abs (a -. b) <= eps

let check_seq_equal what expected actual =
  if not (Seqdata.equal ~eps:1e-6 expected actual) then
    Alcotest.failf "%s:@.expected %s@.actual   %s" what
      (Format.asprintf "%a" Seqdata.pp expected)
      (Format.asprintf "%a" Seqdata.pp actual)

let raw_of_ints ints = Seqdata.raw_of_array (Array.of_list (List.map float_of_int ints))

(* ---- Generators ---- *)

let gen_raw =
  QCheck.Gen.(
    let* n = int_range 0 50 in
    let* data = array_size (return n) (map float_of_int (int_range (-40) 40)) in
    return (Seqdata.raw_of_array data))

let arb_raw =
  QCheck.make gen_raw
    ~print:(fun r ->
      Format.asprintf "[%a]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
           (fun ppf v -> Format.fprintf ppf "%g" v))
        (Array.to_list (Seqdata.raw_to_array r)))

let gen_frame =
  QCheck.Gen.(
    frequency
      [
        (1, return Frame.Cumulative);
        (4,
         let* l = int_range 0 6 in
         let* h = int_range 0 6 in
         return (Frame.sliding ~l ~h));
      ])

let arb_frame = QCheck.make gen_frame ~print:Frame.to_string

let arb_raw_frame = QCheck.pair arb_raw arb_frame

let qtest ?(count = 300) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* ---- Frame tests ---- *)

let test_frame_bounds () =
  Alcotest.(check (pair int int)) "sliding bounds" (3, 9)
    (Frame.bounds (Frame.sliding ~l:2 ~h:4) ~k:5);
  Alcotest.(check (pair int int)) "cumulative bounds" (1, 7)
    (Frame.bounds Frame.Cumulative ~k:7);
  Alcotest.(check (option (pair int int))) "params" (Some (2, 4))
    (Frame.params (Frame.sliding ~l:2 ~h:4))

let test_frame_invalid () =
  Alcotest.check_raises "negative l" (Frame.Invalid "sliding window (-1,2): l and h must be >= 0")
    (fun () -> ignore (Frame.sliding ~l:(-1) ~h:2))

let test_frame_sql () =
  Alcotest.(check string) "cumulative" "ROWS UNBOUNDED PRECEDING"
    (Frame.to_sql Frame.Cumulative);
  Alcotest.(check string) "sliding" "ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING"
    (Frame.to_sql (Frame.sliding ~l:1 ~h:1));
  Alcotest.(check string) "trailing" "ROWS BETWEEN 3 PRECEDING AND CURRENT ROW"
    (Frame.to_sql (Frame.sliding ~l:3 ~h:0))

(* ---- Computation tests ---- *)

let test_compute_example () =
  (* Worked example: raw 1..6, centered window of size 3. *)
  let raw = raw_of_ints [ 1; 2; 3; 4; 5; 6 ] in
  let seq = Compute.naive (Frame.sliding ~l:1 ~h:1) raw in
  Alcotest.(check (list (pair int int)))
    "body values"
    [ (1, 3); (2, 6); (3, 9); (4, 12); (5, 15); (6, 11) ]
    (List.init 6 (fun i -> (i + 1, int_of_float (Seqdata.get seq (i + 1)))));
  (* header position 0 covers x_1; trailer position 7 covers x_6 *)
  Alcotest.(check int) "header" 1 (int_of_float (Seqdata.get seq 0));
  Alcotest.(check int) "trailer" 6 (int_of_float (Seqdata.get seq 7));
  Alcotest.(check int) "outside" 0 (int_of_float (Seqdata.get seq 9))

let test_compute_cumulative () =
  let raw = raw_of_ints [ 5; -2; 7; 0; 1 ] in
  let seq = Compute.pipelined Frame.Cumulative raw in
  Alcotest.(check (list int)) "running sums" [ 5; 3; 10; 10; 11 ]
    (List.init 5 (fun i -> int_of_float (Seqdata.get seq (i + 1))));
  (* cumulative sequences saturate above n and vanish below 1 *)
  Alcotest.(check int) "saturation" 11 (int_of_float (Seqdata.get seq 99));
  Alcotest.(check int) "below" 0 (int_of_float (Seqdata.get seq 0))

let prop_pipelined_eq_naive (raw, frame) =
  let a = Compute.naive frame raw and b = Compute.pipelined frame raw in
  Seqdata.equal ~eps:1e-6 a b

let prop_minmax_pipelined_eq_naive (raw, frame) =
  List.for_all
    (fun agg ->
      Seqdata.equal ~eps:1e-6 (Compute.naive ~agg frame raw)
        (Compute.pipelined ~agg frame raw))
    [ Agg.Min; Agg.Max ]

let prop_count_closed_form (raw, frame) =
  let n = Seqdata.raw_length raw in
  let lo, hi = Seqdata.complete_range frame ~n in
  List.for_all
    (fun k ->
      let wlo, whi = Frame.bounds frame ~k in
      let expected = max 0 (min n whi - max 1 wlo + 1) in
      Agg.count_at frame ~n ~k = expected)
    (List.init (hi - lo + 1) (fun i -> lo + i))

let test_prefix_sums () =
  let raw = raw_of_ints [ 1; 2; 3 ] in
  let c = Compute.prefix_sums raw in
  Alcotest.(check (list int)) "prefix" [ 0; 1; 3; 6 ]
    (List.map int_of_float (Array.to_list c))

(* ---- Maintenance tests (paper §2.3) ---- *)

let gen_edit n =
  QCheck.Gen.(
    let* v = map float_of_int (int_range (-30) 30) in
    if n = 0 then return (Maintain.Insert { k = 1; value = v })
    else
      let* k = int_range 1 n in
      oneof
        [
          return (Maintain.Update { k; value = v });
          (let* k = int_range 1 (n + 1) in
           return (Maintain.Insert { k; value = v }));
          return (Maintain.Delete { k });
        ])

let gen_maintain_case =
  QCheck.Gen.(
    let* raw = gen_raw in
    let* frame = gen_frame in
    let* agg = oneofl [ Agg.Sum; Agg.Min; Agg.Max ] in
    let* edit = gen_edit (Seqdata.raw_length raw) in
    return (raw, frame, agg, edit))

let arb_maintain_case =
  QCheck.make gen_maintain_case ~print:(fun (raw, frame, agg, edit) ->
      Format.asprintf "n=%d %s %s %s" (Seqdata.raw_length raw) (Frame.to_string frame)
        (Agg.name agg)
        (match edit with
         | Maintain.Update { k; value } -> Printf.sprintf "update %d <- %g" k value
         | Maintain.Insert { k; value } -> Printf.sprintf "insert %d <- %g" k value
         | Maintain.Delete { k } -> Printf.sprintf "delete %d" k))

let prop_maintain_eq_recompute (raw, frame, agg, edit) =
  let seq = Compute.sequence ~agg frame raw in
  let incr, raw_incr = Maintain.apply seq raw edit in
  let full, raw_full = Maintain.recompute seq raw edit in
  Seqdata.equal ~eps:1e-6 incr full
  && Array.for_all2 approx (Seqdata.raw_to_array raw_incr) (Seqdata.raw_to_array raw_full)

let test_maintain_update_example () =
  (* §2.3 update rule: only positions [k-h, k+l] change. *)
  let raw = raw_of_ints [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let frame = Frame.sliding ~l:2 ~h:1 in
  let seq = Compute.sequence frame raw in
  let seq', _ = Maintain.apply seq raw (Maintain.Update { k = 5; value = 15. }) in
  let reference = Compute.sequence frame (Seqdata.raw_update raw ~k:5 ~value:15.) in
  check_seq_equal "update" reference seq';
  (* untouched positions really are untouched *)
  Alcotest.(check bool) "locality below" true
    (approx (Seqdata.get seq 3) (Seqdata.get seq' 3));
  Alcotest.(check bool) "locality above" true
    (approx (Seqdata.get seq 8) (Seqdata.get seq' 8))

let prop_update_in_place (raw, frame) =
  let n = Seqdata.raw_length raw in
  n = 0
  ||
  let seq = Compute.sequence frame raw in
  let scratch =
    Seqdata.make frame Agg.Sum ~n ~lo:(Seqdata.stored_lo seq) (Seqdata.to_array seq)
  in
  let k = 1 + (n / 2) in
  let raw' = Maintain.update_in_place scratch raw ~k ~value:99. in
  let reference = Compute.sequence frame raw' in
  Seqdata.equal ~eps:1e-6 reference scratch

let test_maintain_raises () =
  let raw = raw_of_ints [ 1; 2 ] in
  Alcotest.check_raises "update out of range"
    (Invalid_argument "Seqdata.raw_update: position out of range") (fun () ->
      ignore (Seqdata.raw_update raw ~k:3 ~value:0.))

(* ---- Reconstruction tests (paper §3.1/§3.2) ---- *)

let prop_reconstruct_raw (raw, frame) =
  let seq = Compute.sequence frame raw in
  let back = Reconstruct.raw_all seq in
  Array.for_all2 approx (Seqdata.raw_to_array raw) (Seqdata.raw_to_array back)

let prop_reconstruct_pointwise (raw, frame) =
  let seq = Compute.sequence frame raw in
  let n = Seqdata.raw_length raw in
  List.for_all
    (fun k -> approx (Seqdata.raw_get raw k) (Reconstruct.raw_value seq ~k))
    (List.init n (fun i -> i + 1))

let test_reconstruct_example () =
  (* §3.1: x_k = x̃_k - x̃_{k-1} on a cumulative view. *)
  let raw = raw_of_ints [ 4; 7; 1 ] in
  let view = Compute.sequence Frame.Cumulative raw in
  Alcotest.(check bool) "x_2" true (approx 7. (Reconstruct.raw_from_cumulative view ~k:2))

let test_reconstruct_minmax_rejected () =
  let raw = raw_of_ints [ 1; 2; 3 ] in
  let view = Compute.sequence ~agg:Agg.Min (Frame.sliding ~l:1 ~h:1) raw in
  Alcotest.check_raises "min view"
    (Invalid_argument "Reconstruct: MIN/MAX sequences do not determine raw values")
    (fun () -> ignore (Reconstruct.raw_all view))

let test_prefix_matches_raw_prefix () =
  let raw = raw_of_ints [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  let view = Compute.sequence (Frame.sliding ~l:2 ~h:1) raw in
  let c = Reconstruct.prefix view in
  let cref = Compute.prefix_sums raw in
  for j = 0 to 8 do
    if not (approx (c j) cref.(j)) then
      Alcotest.failf "C(%d): %g <> %g" j (c j) cref.(j)
  done;
  (* clamping beyond the data *)
  Alcotest.(check bool) "above" true (approx (c 100) cref.(8));
  Alcotest.(check bool) "below" true (approx (c (-3)) 0.)

(* ---- Agg helpers and sequence accessors ---- *)

let test_agg_helpers () =
  Alcotest.(check int) "count interior" 3
    (Agg.count_at (Frame.sliding ~l:1 ~h:1) ~n:10 ~k:5);
  Alcotest.(check int) "count clamped low" 2
    (Agg.count_at (Frame.sliding ~l:1 ~h:1) ~n:10 ~k:1);
  Alcotest.(check int) "count outside" 0
    (Agg.count_at (Frame.sliding ~l:1 ~h:1) ~n:10 ~k:20);
  Alcotest.(check int) "cumulative count" 4 (Agg.count_at Frame.Cumulative ~n:10 ~k:4);
  Alcotest.(check bool) "avg of sum" true
    (Agg.avg_of_sum (Frame.sliding ~l:1 ~h:1) ~n:10 ~k:5 9. = 3.);
  Alcotest.(check bool) "avg empty is absent" true
    (Agg.is_absent (Agg.avg_of_sum (Frame.sliding ~l:1 ~h:1) ~n:10 ~k:20 0.));
  Alcotest.(check bool) "combine absent" true
    (Agg.combine Agg.Min Agg.absent 5. = 5.);
  Alcotest.(check bool) "min combine" true (Agg.combine Agg.Min 3. 5. = 3.);
  Alcotest.(check bool) "max combine" true (Agg.combine Agg.Max 3. 5. = 5.)

let test_seqdata_accessors () =
  let raw = raw_of_ints [ 1; 2; 3; 4 ] in
  let seq = Compute.sequence (Frame.sliding ~l:2 ~h:1) raw in
  Alcotest.(check int) "header size h-? positions below 1" 1
    (Array.length (Seqdata.header seq));
  Alcotest.(check int) "trailer size" 2 (Array.length (Seqdata.trailer seq));
  Alcotest.(check int) "body size" 4 (Array.length (Seqdata.body seq));
  Alcotest.(check bool) "mirror round trip" true
    (Seqdata.equal seq (Seqdata.mirror (Seqdata.mirror seq)));
  (* mirrored raw reverses *)
  let m = Seqdata.mirror_raw raw in
  Alcotest.(check bool) "mirror raw" true
    (Seqdata.raw_to_array m = [| 4.; 3.; 2.; 1. |])

(* ---- Suite ---- *)

let () =
  Alcotest.run "core-seq"
    [
      ( "frame",
        [
          Alcotest.test_case "bounds" `Quick test_frame_bounds;
          Alcotest.test_case "invalid" `Quick test_frame_invalid;
          Alcotest.test_case "to_sql" `Quick test_frame_sql;
        ] );
      ( "compute",
        [
          Alcotest.test_case "worked example" `Quick test_compute_example;
          Alcotest.test_case "cumulative" `Quick test_compute_cumulative;
          Alcotest.test_case "prefix sums" `Quick test_prefix_sums;
          qtest "pipelined = naive (SUM)" arb_raw_frame prop_pipelined_eq_naive;
          qtest "pipelined = naive (MIN/MAX)" arb_raw_frame prop_minmax_pipelined_eq_naive;
          qtest "COUNT closed form" arb_raw_frame prop_count_closed_form;
        ] );
      ( "accessors",
        [
          Alcotest.test_case "agg helpers" `Quick test_agg_helpers;
          Alcotest.test_case "seqdata accessors" `Quick test_seqdata_accessors;
        ] );
      ( "maintain",
        [
          Alcotest.test_case "update example" `Quick test_maintain_update_example;
          Alcotest.test_case "out of range" `Quick test_maintain_raises;
          qtest ~count:500 "incremental = recompute" arb_maintain_case
            prop_maintain_eq_recompute;
          qtest "in-place update = recompute" arb_raw_frame prop_update_in_place;
        ] );
      ( "reconstruct",
        [
          Alcotest.test_case "cumulative example" `Quick test_reconstruct_example;
          Alcotest.test_case "min/max rejected" `Quick test_reconstruct_minmax_rejected;
          Alcotest.test_case "prefix closure" `Quick test_prefix_matches_raw_prefix;
          qtest "raw_all inverts compute" arb_raw_frame prop_reconstruct_raw;
          qtest "pointwise explicit form" arb_raw_frame prop_reconstruct_pointwise;
        ] );
    ]
