test/test_relalg.ml: Aggregate Alcotest Array Dtype Expr Gen Groupop Index Joinop List Ops QCheck QCheck_alcotest Relation Rfview_relalg Row Schema Sortop Value
