test/test_optimize.ml: Alcotest Array Gen Printf QCheck QCheck_alcotest Relation Rfview_engine Rfview_planner Rfview_relalg Row String Value
