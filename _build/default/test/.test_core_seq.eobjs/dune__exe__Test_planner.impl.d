test/test_planner.ml: Alcotest Array Gen List Printf QCheck QCheck_alcotest Relation Rfview_engine Rfview_planner Rfview_relalg Row String Value Window
