test/test_derivation.ml: Agg Alcotest Array Compute Derive Format Frame List Maxoa Minoa Position Printf QCheck QCheck_alcotest Reporting Rfview_core Seqdata String
