test/test_derivation.mli:
