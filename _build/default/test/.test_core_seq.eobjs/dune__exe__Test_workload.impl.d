test/test_workload.ml: Alcotest Array Float Fun Relation Rfview_core Rfview_engine Rfview_relalg Rfview_workload Row Schema Value
