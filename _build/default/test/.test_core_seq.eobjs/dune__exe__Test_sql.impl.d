test/test_sql.ml: Alcotest List QCheck QCheck_alcotest Rfview_core Rfview_planner Rfview_sql
