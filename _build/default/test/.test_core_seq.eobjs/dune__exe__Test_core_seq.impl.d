test/test_core_seq.ml: Agg Alcotest Array Compute Float Format Frame List Maintain Printf QCheck QCheck_alcotest Reconstruct Rfview_core Seqdata
