test/test_window.ml: Aggregate Alcotest Array Dtype Expr Float Gen List Printf QCheck QCheck_alcotest Relation Rfview_relalg Row Schema Sortop Value Window
