test/test_core_seq.mli:
