test/test_engine.ml: Alcotest Array Buffer Float Hashtbl List Printf QCheck QCheck_alcotest Relation Rfview_core Rfview_engine Rfview_planner Rfview_relalg Rfview_sql Row String Value
