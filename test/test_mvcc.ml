(* MVCC snapshot tests: version publishing at commit points, snapshot
   isolation (a snapshot never observes later writes, open batches, or
   rolled-back statements), the bounded retained-version window with
   pin-survival, snapshot-local healing of quarantined views, the
   [Rfview.Snapshot] façade, and a concurrent chaos harness proving
   that every snapshot read from a reader domain is bit-identical to
   the true historical state at its reported LSN.

   Domain count for the concurrent suites comes from RFVIEW_TEST_DOMAINS
   (default 4) — CI runs the suite at 1 and at 4. *)

open Rfview_relalg
module Db = Rfview_engine.Database
module Fault = Rfview_engine.Fault
module Session = Rfview.Session
module Snapshot = Rfview.Snapshot

let test_domains =
  match Sys.getenv_opt "RFVIEW_TEST_DOMAINS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

let with_clean_faults f =
  Fault.reset ();
  Fun.protect ~finally:Fault.reset f

let db_with_view data =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE seq (pos INT, val FLOAT)");
  if data <> [] then
    ignore
      (Db.exec db
         (Printf.sprintf "INSERT INTO seq VALUES %s"
            (String.concat ", "
               (List.mapi (fun i v -> Printf.sprintf "(%d, %g)" (i + 1) v) data))));
  ignore
    (Db.exec db
       "CREATE MATERIALIZED VIEW v AS SELECT pos, val, SUM(val) OVER (ORDER BY \
        pos ROWS UNBOUNDED PRECEDING) AS s FROM seq");
  db

let count db sql = Relation.cardinality (Db.query db sql)
let snap_count sn sql = Relation.cardinality (Db.Snapshot.query sn sql)

(* ---- Version publishing ---- *)

let test_publish_on_commit () =
  let db = Db.create () in
  Alcotest.(check (list int)) "fresh db has version 0" [ 0 ]
    (Db.retained_lsns db);
  ignore (Db.exec db "CREATE TABLE t (a INT)");
  ignore (Db.exec db "INSERT INTO t VALUES (1)");
  Alcotest.(check (list int)) "one version per commit, newest first"
    [ 2; 1; 0 ] (Db.retained_lsns db);
  (* a failed statement publishes nothing *)
  (try ignore (Db.exec db "INSERT INTO nope VALUES (1)") with _ -> ());
  Alcotest.(check (list int)) "rollback publishes nothing" [ 2; 1; 0 ]
    (Db.retained_lsns db)

let test_batch_is_one_version () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE t (a INT)");
  Db.with_batch db (fun () ->
      ignore (Db.exec db "INSERT INTO t VALUES (1)");
      ignore (Db.exec db "INSERT INTO t VALUES (2)");
      ignore (Db.exec db "INSERT INTO t VALUES (3)"));
  Alcotest.(check (list int)) "whole batch is one commit point" [ 2; 1; 0 ]
    (Db.retained_lsns db)

(* ---- Snapshot isolation ---- *)

let test_snapshot_isolation () =
  let db = db_with_view [ 1.; 2.; 3. ] in
  let sn = Db.snapshot db in
  let fp_before = Db.fingerprint db in
  ignore (Db.exec db "INSERT INTO seq VALUES (4, 40)");
  ignore (Db.exec db "DELETE FROM seq WHERE pos = 1");
  Alcotest.(check int) "snapshot sees the old base" 3
    (snap_count sn "SELECT * FROM seq");
  Alcotest.(check int) "snapshot sees the old view" 3
    (snap_count sn "SELECT * FROM v");
  Alcotest.(check string) "snapshot fingerprint is the historical state"
    fp_before (Db.Snapshot.fingerprint sn);
  Alcotest.(check int) "live database moved on" 3
    (count db "SELECT * FROM seq");
  Db.release db sn

let test_snapshot_at_and_stale () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE t (a INT)");
  for i = 1 to 20 do
    ignore (Db.exec db (Printf.sprintf "INSERT INTO t VALUES (%d)" i))
  done;
  (* default window is 8: version 1 has been evicted *)
  (match Db.snapshot_at db ~lsn:1 with
   | Ok _ -> Alcotest.fail "evicted version must not be snapshottable"
   | Error v ->
     Alcotest.(check int) "violation reports the wanted lsn" 1 v.applied_lsn;
     Alcotest.(check int) "violation reports the tip" 21 v.tip_lsn;
     Alcotest.(check int) "lag in records" 20 v.lag.records);
  (* a retained lsn is exact *)
  let lsn = List.nth (Db.retained_lsns db) 2 in
  (match Db.snapshot_at db ~lsn with
   | Error _ -> Alcotest.fail "retained version must be snapshottable"
   | Ok sn ->
     Alcotest.(check int) "exact lsn" lsn (Db.Snapshot.lsn sn);
     Alcotest.(check int) "historical cardinality" (lsn - 1)
       (snap_count sn "SELECT * FROM t");
     Db.Snapshot.close sn)

let test_retain_window_and_pins () =
  let db = Db.create () in
  Db.set_retain db 2;
  ignore (Db.exec db "CREATE TABLE t (a INT)");
  let sn = Db.snapshot db in
  (* push the pinned version far past the window *)
  for i = 1 to 10 do
    ignore (Db.exec db (Printf.sprintf "INSERT INTO t VALUES (%d)" i))
  done;
  Alcotest.(check (list int)) "window keeps the newest two plus the pin"
    [ 11; 10; 1 ] (Db.retained_lsns db);
  Alcotest.(check int) "pinned snapshot still serves" 0
    (snap_count sn "SELECT * FROM t");
  Db.Snapshot.close sn;
  ignore (Db.exec db "INSERT INTO t VALUES (99)");
  Alcotest.(check (list int)) "unpinned version swept on the next commit"
    [ 12; 11 ] (Db.retained_lsns db);
  Alcotest.(check bool) "set_retain validates" true
    (match Db.set_retain db 0 with
     | () -> false
     | exception Invalid_argument _ -> true
     | exception Db.Engine_error _ -> true)

let test_close_under_active_snapshot () =
  (* regression: releasing resources under an open snapshot must not
     invalidate it *)
  let db = db_with_view [ 1.; 2. ] in
  let sn = Db.snapshot db in
  Db.close db;
  Alcotest.(check int) "snapshot survives Db.close" 2
    (snap_count sn "SELECT * FROM seq");
  (* double release is idempotent *)
  Db.release db sn;
  Db.release db sn;
  Alcotest.(check bool) "released" true (Db.Snapshot.released sn);
  (match snap_count sn "SELECT * FROM seq" with
   | _ -> Alcotest.fail "closed snapshot must refuse queries"
   | exception Db.Engine_error _ -> ())

let test_snapshot_read_only () =
  let db = db_with_view [ 1. ] in
  let sn = Db.snapshot db in
  (match Db.Snapshot.query sn "INSERT INTO seq VALUES (9, 9)" with
   | _ -> Alcotest.fail "snapshot must refuse writes"
   | exception Db.Engine_error _ -> ());
  Alcotest.(check int) "nothing was written" 1 (count db "SELECT * FROM seq");
  Db.release db sn

let test_snapshot_local_heal () =
  with_clean_faults (fun () ->
      let db = db_with_view [ 1.; 2.; 3. ] in
      Fault.arm "matview.apply_insert" Fault.Always;
      ignore (Db.exec db "INSERT INTO seq VALUES (4, 40)");
      Fault.disarm "matview.apply_insert";
      Alcotest.(check (list string)) "view is quarantined" [ "v" ]
        (Db.stale_views db);
      let sn = Db.snapshot db in
      (* the snapshot heals its own frozen copy... *)
      Alcotest.(check int) "snapshot read heals locally" 4
        (snap_count sn "SELECT * FROM v");
      (* ...without touching the live database *)
      Alcotest.(check (list string)) "live view is still quarantined" [ "v" ]
        (Db.stale_views db);
      Db.release db sn)

(* ---- The façade: Session.query as snapshot-at-tip, Rfview.Snapshot ---- *)

let session_fixture () =
  let s = Session.open_in_memory () in
  (match
     Session.exec_script s
       "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); INSERT INTO t \
        VALUES (2)"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Session.describe_error e));
  s

let test_session_query_snapshot_sugar () =
  let s = session_fixture () in
  (match Session.query s "SELECT * FROM t" with
   | Ok rel -> Alcotest.(check int) "quiescent read" 2 (Relation.cardinality rel)
   | Error e -> Alcotest.fail (Session.describe_error e));
  (* read-your-writes inside a batch: the direct path, not a snapshot *)
  Session.with_batch s (fun () ->
      (match Session.exec s "INSERT INTO t VALUES (3)" with
       | Ok _ -> ()
       | Error e -> Alcotest.fail (Session.describe_error e));
      match Session.query s "SELECT * FROM t" with
      | Ok rel ->
        Alcotest.(check int) "batch read sees its own writes" 3
          (Relation.cardinality rel)
      | Error e -> Alcotest.fail (Session.describe_error e));
  (* but a snapshot taken mid-batch must not *)
  Session.with_batch s (fun () ->
      (match Session.exec s "INSERT INTO t VALUES (4)" with
       | Ok _ -> ()
       | Error e -> Alcotest.fail (Session.describe_error e));
      let sn = Snapshot.snapshot s in
      (match Snapshot.query sn "SELECT * FROM t" with
       | Ok rel ->
         Alcotest.(check int) "snapshot mid-batch sees the pre-batch state" 3
           (Relation.cardinality rel)
       | Error e -> Alcotest.fail (Session.describe_error e));
      Snapshot.close sn)

let test_facade_snapshot_at_stale_error () =
  let s = session_fixture () in
  for i = 10 to 30 do
    ignore (Session.exec s (Printf.sprintf "INSERT INTO t VALUES (%d)" i))
  done;
  match Snapshot.at s ~lsn:1 with
  | Ok _ -> Alcotest.fail "evicted lsn must be refused"
  | Error (Session.Stale v) ->
    Alcotest.(check bool) "describe mentions staleness" true
      (String.length (Rfview.Staleness.describe v) > 0);
    Alcotest.(check int) "violation lsn" 1 v.applied_lsn
  | Error e -> Alcotest.fail (Session.describe_error e)

(* ---- qcheck: a snapshot never observes an open batch ---- *)

let prop_snapshot_never_sees_open_batch (values : int list) =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE t (a INT)");
  ignore (Db.exec db "INSERT INTO t VALUES (0)");
  let before_rows = count db "SELECT * FROM t" in
  let before_lsns = Db.retained_lsns db in
  let tip = List.hd before_lsns in
  Db.with_batch db (fun () ->
      List.iter
        (fun v ->
          ignore (Db.exec db (Printf.sprintf "INSERT INTO t VALUES (%d)" v));
          (* snapshot mid-batch: must be the pre-batch commit point *)
          let sn = Db.snapshot db in
          if Db.Snapshot.lsn sn <> tip then
            QCheck.Test.fail_reportf
              "mid-batch snapshot at lsn %d, expected pre-batch tip %d"
              (Db.Snapshot.lsn sn) tip;
          let seen = snap_count sn "SELECT * FROM t" in
          if seen <> before_rows then
            QCheck.Test.fail_reportf
              "mid-batch snapshot sees %d rows, pre-batch state had %d" seen
              before_rows;
          Db.release db sn)
        values);
  (* after commit, a fresh snapshot sees everything *)
  let sn = Db.snapshot db in
  let seen = snap_count sn "SELECT * FROM t" in
  Db.release db sn;
  seen = before_rows + List.length values

let arb_batch_values =
  QCheck.make
    QCheck.Gen.(list_size (int_range 1 8) (int_range 0 1000))
    ~print:(fun l -> String.concat "," (List.map string_of_int l))

let qtest ~count name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* ---- Concurrent chaos: every read is a true historical state ---- *)

(* One writer domain commits random mutations; [test_domains] reader
   domains concurrently snapshot and compare fingerprints against an
   oracle of true historical states.  The oracle is built from a shadow
   database executing the identical statement sequence one step AHEAD
   of the primary, so by the time a version is snapshottable its
   expected fingerprint is already recorded.  Shadow and primary run
   with [`Abort] degradation so both stay deterministic. *)
let test_concurrent_chaos () =
  let mk () =
    let db =
      Db.create ~config:{ Db.default_config with degradation = `Abort } ()
    in
    ignore (Db.exec db "CREATE TABLE seq (pos INT, val FLOAT)");
    ignore
      (Db.exec db
         "CREATE MATERIALIZED VIEW v AS SELECT pos, val, SUM(val) OVER (ORDER \
          BY pos ROWS UNBOUNDED PRECEDING) AS s FROM seq");
    db
  in
  let primary = mk () and shadow = mk () in
  let steps = 60 in
  let statement i =
    match i mod 5 with
    | 0 | 1 | 2 -> Printf.sprintf "INSERT INTO seq VALUES (%d, %d)" i (i * 10)
    | 3 -> Printf.sprintf "DELETE FROM seq WHERE pos = %d" (i - 3)
    | _ -> Printf.sprintf "UPDATE seq SET val = %d WHERE pos = %d" (i * 7) (i - 2)
  in
  let oracle : (int, string) Hashtbl.t = Hashtbl.create 128 in
  let omu = Mutex.create () in
  let record_shadow () =
    let sn = Db.snapshot shadow in
    let lsn = Db.Snapshot.lsn sn and fp = Db.Snapshot.fingerprint sn in
    Db.release shadow sn;
    Mutex.lock omu;
    Hashtbl.replace oracle lsn fp;
    Mutex.unlock omu
  in
  record_shadow ();
  let done_flag = Atomic.make false in
  let wrong = Atomic.make 0 and reads = Atomic.make 0 in
  let reader () =
    while not (Atomic.get done_flag) do
      let sn = Db.snapshot primary in
      let lsn = Db.Snapshot.lsn sn in
      let fp = Db.Snapshot.fingerprint sn in
      (* consistency of two reads of the same snapshot *)
      let n1 = snap_count sn "SELECT * FROM seq" in
      let n2 = snap_count sn "SELECT * FROM seq" in
      Db.release primary sn;
      let expected =
        Mutex.lock omu;
        let e = Hashtbl.find_opt oracle lsn in
        Mutex.unlock omu;
        e
      in
      (match expected with
       | Some efp when efp = fp && n1 = n2 -> ()
       | Some _ | None -> Atomic.incr wrong);
      Atomic.incr reads
    done
  in
  let readers = List.init test_domains (fun _ -> Domain.spawn reader) in
  for i = 1 to steps do
    let sql = statement i in
    ignore (Db.exec shadow sql);
    record_shadow ();
    ignore (Db.exec primary sql);
    if i mod 10 = 0 then
      (* batched mutations exercise the single-commit-point path *)
      let batch =
        [ Printf.sprintf "INSERT INTO seq VALUES (%d, 1)" (1000 + i);
          Printf.sprintf "INSERT INTO seq VALUES (%d, 2)" (2000 + i) ]
      in
      begin
        Db.with_batch shadow (fun () ->
            List.iter (fun s -> ignore (Db.exec shadow s)) batch);
        record_shadow ();
        Db.with_batch primary (fun () ->
            List.iter (fun s -> ignore (Db.exec primary s)) batch)
      end
  done;
  Atomic.set done_flag true;
  List.iter Domain.join readers;
  Alcotest.(check int) "zero wrong reads" 0 (Atomic.get wrong);
  Alcotest.(check bool)
    (Printf.sprintf "readers made progress (%d reads)" (Atomic.get reads))
    true
    (Atomic.get reads > 0);
  Alcotest.(check string) "primary ended at the shadow's final state"
    (Db.fingerprint shadow) (Db.fingerprint primary)

let () =
  Alcotest.run "mvcc"
    [
      ( "versions",
        [
          Alcotest.test_case "publish on commit" `Quick test_publish_on_commit;
          Alcotest.test_case "batch is one version" `Quick
            test_batch_is_one_version;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "isolation" `Quick test_snapshot_isolation;
          Alcotest.test_case "snapshot_at exact + stale" `Quick
            test_snapshot_at_and_stale;
          Alcotest.test_case "retain window + pins" `Quick
            test_retain_window_and_pins;
          Alcotest.test_case "close under active snapshot" `Quick
            test_close_under_active_snapshot;
          Alcotest.test_case "read-only" `Quick test_snapshot_read_only;
          Alcotest.test_case "snapshot-local heal" `Quick
            test_snapshot_local_heal;
        ] );
      ( "facade",
        [
          Alcotest.test_case "Session.query is snapshot-at-tip" `Quick
            test_session_query_snapshot_sugar;
          Alcotest.test_case "Snapshot.at stale error" `Quick
            test_facade_snapshot_at_stale_error;
          qtest ~count:100 "snapshot never sees an open batch"
            arb_batch_values prop_snapshot_never_sees_open_batch;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case
            (Printf.sprintf "chaos: %d reader domain(s), zero wrong reads"
               test_domains)
            `Slow test_concurrent_chaos;
        ] );
    ]
