(* Tests of the abstract interpreter (lib/analysis/absint.ml) and its
   domains: interval/cardinality lattice laws and widening, transfer
   golden cases over bound plans with known table contents, RF201-RF204
   firing AND non-firing cases, the differential sanitizer over the
   example corpus and a sanitized chaos seed matrix, and the registry
   sync check (every RFxxx code mentioned in lib/analysis sources is
   registered, and every registered code is documented in DESIGN.md). *)

open Rfview_relalg
module A = Rfview_analysis
module Domain = A.Domain
module Absint = A.Absint
module Diagnostic = A.Diagnostic
module Sanitize = A.Sanitize
module Itv = Domain.Itv
module Card = Domain.Card
module B3 = Domain.B3
module Null = Domain.Null
module P = Rfview_planner
module Logical = Rfview_planner.Logical
module Db = Rfview_engine.Database
module Chaos = Rfview_workload.Chaos
module Core = Rfview_core

(* ---- Fixtures ---- *)

let db3 () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE a (x INT, u INT)");
  ignore (Db.exec db "CREATE TABLE seq (pos INT, val FLOAT)");
  ignore (Db.exec db "INSERT INTO a VALUES (1, 10), (2, 20), (3, 30)");
  ignore (Db.exec db "INSERT INTO seq VALUES (1, 1.5), (2, 2.5), (3, 3.5)");
  db

let env_of db =
  let cat = Db.catalog_view db in
  fun name ->
    try Some (cat.Rfview_planner.Physical.table_contents name) with _ -> None

let bind db sql =
  P.Binder.bind_query (Db.binder_catalog db) (Rfview_sql.Parser.query sql)

(* Repo-root-relative paths work both under `dune runtest` (cwd is the
   sandboxed test/ directory, whose parent holds the declared deps) and
   under a bare `dune exec test/...` from the checkout root. *)
let at_root f = if Sys.file_exists f then f else Filename.concat ".." f

let analyze db sql = Absint.analyze ~env:(env_of db) (bind db sql)
let codes ds = List.sort_uniq compare (List.map (fun d -> d.Diagnostic.code) ds)
let diag_codes db sql = codes (Absint.diagnostics ~env:(env_of db) (bind db sql))

let itv =
  Alcotest.testable
    (fun ppf t -> Format.pp_print_string ppf (Itv.to_string t))
    Itv.equal

let card =
  Alcotest.testable
    (fun ppf t -> Format.pp_print_string ppf (Card.to_string t))
    Card.equal

(* ---- Domains ---- *)

let test_itv_lattice () =
  let i a b = Itv.of_bounds a b in
  Alcotest.check itv "join" (i 0. 10.) (Itv.join (i 0. 3.) (i 7. 10.));
  Alcotest.check itv "meet" (i 2. 3.) (Itv.meet (i 0. 3.) (i 2. 10.));
  Alcotest.check itv "empty meet is bot" Itv.bot (Itv.meet (i 0. 1.) (i 2. 3.));
  Alcotest.check itv "bot absorbs join" (i 1. 2.) (Itv.join Itv.bot (i 1. 2.));
  Alcotest.(check bool) "leq" true (Itv.leq (i 1. 2.) (i 0. 3.));
  Alcotest.(check bool) "not leq" false (Itv.leq (i 0. 3.) (i 1. 2.))

let test_itv_widen () =
  let i a b = Itv.of_bounds a b in
  (* a grown bound jumps to infinity; a stable one is kept *)
  Alcotest.check itv "upper widens" (i 0. infinity) (Itv.widen (i 0. 5.) (i 0. 10.));
  Alcotest.check itv "lower widens" (i neg_infinity 5.) (Itv.widen (i 0. 5.) (i (-1.) 5.));
  Alcotest.check itv "stable is fixed" (i 0. 5.) (Itv.widen (i 0. 5.) (i 0. 5.));
  (* any ascending chain stabilizes after widening *)
  let w = Itv.widen (i 0. 5.) (i (-3.) 9.) in
  Alcotest.check itv "stabilized" w (Itv.widen w (Itv.join w (i (-100.) 100.)))

let test_itv_arith () =
  let i a b = Itv.of_bounds a b in
  Alcotest.check itv "add" (i 3. 7.) (Itv.add (i 1. 3.) (i 2. 4.));
  Alcotest.check itv "mul signs" (i (-8.) 12.) (Itv.mul (i (-2.) 3.) (i 2. 4.));
  Alcotest.(check bool) "div by zero-straddling is wide" true
    (Itv.contains (Itv.div (i 1. 1.) (i (-1.) 1.)) 1000.);
  (* the interval constrains non-NULL results only, so the hull starts
     at one summand even when zero rows are possible (SUM of none = NULL) *)
  Alcotest.check itv "sum_n hull" (i 1. 30.)
    (Itv.sum_n (i 1. 10.) ~lo:0 ~hi:(Some 3));
  Alcotest.(check bool) "sum_n unbounded" true
    (Itv.contains (Itv.sum_n (i 1. 10.) ~lo:1 ~hi:None) 1e12)

let test_card () =
  Alcotest.check card "join" (Card.of_bounds 1 (Some 5))
    (Card.join (Card.exact 1) (Card.exact 5));
  Alcotest.check card "widen grows to top" (Card.of_bounds 0 None)
    (Card.widen (Card.of_bounds 1 (Some 2)) (Card.of_bounds 0 (Some 3)));
  Alcotest.check card "mul" (Card.of_bounds 2 (Some 12))
    (Card.mul (Card.of_bounds 1 (Some 3)) (Card.of_bounds 2 (Some 4)));
  Alcotest.check card "cap" (Card.of_bounds 1 (Some 2))
    (Card.cap (Card.of_bounds 1 (Some 9)) 2);
  Alcotest.(check bool) "contains" true (Card.contains Card.top 17)

let test_b3 () =
  Alcotest.(check bool) "const true can't be false" false (B3.const true).B3.can_f;
  Alcotest.(check bool) "not3 flips" true (B3.not3 (B3.const true)).B3.can_f;
  (* Kleene AND: false dominates NULL *)
  let a = B3.and3 (B3.const false) B3.null in
  Alcotest.(check bool) "false AND null is false" true
    (a.B3.can_f && (not a.B3.can_t) && not a.B3.can_null);
  Alcotest.(check bool) "never_true" true (B3.never_true (B3.const false));
  Alcotest.(check bool) "top may be true" false (B3.never_true B3.top)

let test_abstraction_roundtrip () =
  let db = db3 () in
  let r = Db.query db "SELECT x, u FROM a ORDER BY x" in
  let abs = Domain.abstract_relation r in
  Alcotest.(check bool) "exact abstraction contains its relation" true
    (Result.is_ok (Domain.check_relation abs r));
  (* shrink the first column's interval: the check must name a violation *)
  let narrowed =
    { abs with
      Domain.cols =
        Array.mapi
          (fun i c ->
            if i = 0 then { c with Domain.av = { c.Domain.av with Domain.itv = Itv.const 1. } }
            else c)
          abs.Domain.cols }
  in
  Alcotest.(check bool) "violation detected" true
    (Result.is_error (Domain.check_relation narrowed r))

let test_seqfact () =
  let frame = Core.Frame.sliding ~l:1 ~h:1 in
  let lo, hi = Core.Seqdata.complete_range frame ~n:5 in
  let seq =
    Core.Seqdata.make frame Core.Agg.Sum ~n:5 ~lo
      (Array.init (hi - lo + 1) float_of_int)
  in
  let f = Domain.Seqfact.of_seq seq in
  Alcotest.(check bool) "complete" true f.Domain.Seqfact.complete;
  Alcotest.(check bool) "header" true (Domain.Seqfact.header_covered f);
  Alcotest.(check bool) "trailer" true (Domain.Seqfact.trailer_covered f);
  Alcotest.(check int) "n" 5 f.Domain.Seqfact.n

(* ---- Transfer golden cases (known table contents) ---- *)

let test_transfer_scan_project () =
  let db = db3 () in
  let abs = analyze db "SELECT x + u AS s FROM a" in
  Alcotest.check card "rows exact" (Card.exact 3) abs.Domain.rows;
  let c = abs.Domain.cols.(0) in
  Alcotest.check itv "x+u hull" (Itv.of_bounds 11. 33.) c.Domain.av.Domain.itv;
  Alcotest.(check bool) "never null" true (c.Domain.av.Domain.null = Null.Never)

let test_transfer_filter_refines () =
  let db = db3 () in
  let abs = analyze db "SELECT x FROM a WHERE x >= 2" in
  (* the predicate refines the column interval and relaxes the row floor *)
  let c = abs.Domain.cols.(0) in
  Alcotest.check itv "interval refined to [2,3]" (Itv.of_bounds 2. 3.)
    c.Domain.av.Domain.itv;
  Alcotest.check card "rows [0,3]" (Card.of_bounds 0 (Some 3)) abs.Domain.rows

let test_transfer_aggregate () =
  let db = db3 () in
  let abs = analyze db "SELECT SUM(u) AS s FROM a" in
  Alcotest.check card "one group" (Card.exact 1) abs.Domain.rows;
  let c = abs.Domain.cols.(0) in
  Alcotest.(check bool) "concrete 60 inside" true
    (Itv.contains c.Domain.av.Domain.itv 60.)

let test_transfer_window_cumsum () =
  let db = db3 () in
  let abs =
    analyze db
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS s \
       FROM seq ORDER BY pos"
  in
  let s = abs.Domain.cols.(1) in
  (* concrete running totals are 1.5, 4.0, 7.5 — all inside the hull *)
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "%g inside" v)
        true
        (Itv.contains s.Domain.av.Domain.itv v))
    [ 1.5; 4.0; 7.5 ];
  Alcotest.(check bool) "never null" true (s.Domain.av.Domain.null = Null.Never)

let test_transfer_union_limit () =
  let db = db3 () in
  let abs = analyze db "SELECT x FROM a UNION ALL SELECT x FROM a" in
  Alcotest.check card "union adds" (Card.exact 6) abs.Domain.rows;
  let abs = analyze db "SELECT x FROM a LIMIT 2" in
  Alcotest.check card "limit caps" (Card.exact 2) abs.Domain.rows

(* ---- RF2xx diagnostics: firing and non-firing ---- *)

let test_rf201 () =
  let db = db3 () in
  Alcotest.(check (list string)) "contradictory conjuncts fire" [ "RF201" ]
    (diag_codes db "SELECT x FROM a WHERE x > 5 AND x < 3");
  Alcotest.(check (list string)) "constant-false fires" [ "RF201" ]
    (diag_codes db "SELECT x FROM a WHERE 1 = 2");
  Alcotest.(check (list string)) "satisfiable is quiet" []
    (diag_codes db "SELECT x FROM a WHERE x > 1 AND x < 3");
  (* the statically-empty branch also pins the row count to zero *)
  let abs = analyze db "SELECT x FROM a WHERE x > 5 AND x < 3" in
  Alcotest.check card "empty rows" Card.zero abs.Domain.rows

let test_rf202 () =
  let db = db3 () in
  Alcotest.(check (list string)) "x / 0 fires" [ "RF202" ]
    (diag_codes db "SELECT x / 0 AS q FROM a");
  Alcotest.(check (list string)) "x / 2 is quiet" []
    (diag_codes db "SELECT x / 2 AS q FROM a");
  (* a zero-straddling non-constant divisor is possible, not guaranteed *)
  Alcotest.(check (list string)) "x / (u - 20) is quiet" []
    (diag_codes db "SELECT x / (u - 20) AS q FROM a")

let test_rf203 () =
  (* a column whose every stored value is NULL abstracts to
     [Null.Always]; SUM over it warns, COUNT does not *)
  let schema =
    Schema.make [ Schema.column "x" Dtype.Int; Schema.column "n" Dtype.Int ]
  in
  let rel =
    Relation.make schema
      [ [| Value.Int 1; Value.Null |]; [| Value.Int 2; Value.Null |] ]
  in
  let env name = if name = "t" then Some rel else None in
  let scan = Logical.Scan { table = "t"; schema } in
  let agg kind arg =
    Logical.Aggregate
      { input = scan; group = []; aggs = [ { Groupop.kind; arg; name = "s" } ] }
  in
  Alcotest.(check (list string)) "SUM over always-NULL fires" [ "RF203" ]
    (codes (Absint.diagnostics ~env (agg Aggregate.Sum (Expr.Col 1))));
  Alcotest.(check (list string)) "COUNT over always-NULL is quiet" []
    (codes (Absint.diagnostics ~env (agg Aggregate.Count (Expr.Col 1))));
  Alcotest.(check (list string)) "SUM over a live column is quiet" []
    (codes (Absint.diagnostics ~env (agg Aggregate.Sum (Expr.Col 0))))

let test_rf204 () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE big (pos INT, v INT)");
  ignore
    (Db.exec db
       "INSERT INTO big VALUES (1, 4503599627370496), (2, 4503599627370496), \
        (3, 4503599627370496)");
  (* 3 summands of 2^52 provably exceed 2^53 *)
  Alcotest.(check (list string)) "huge SUM fires" [ "RF204" ]
    (diag_codes db "SELECT SUM(v) AS s FROM big");
  Alcotest.(check (list string)) "huge cumulative window fires" [ "RF204" ]
    (diag_codes db
       "SELECT pos, SUM(v) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS s \
        FROM big");
  let db3 = db3 () in
  Alcotest.(check (list string)) "small SUM is quiet" []
    (diag_codes db3 "SELECT SUM(u) AS s FROM a")

let test_report_and_annotate () =
  let db = db3 () in
  let r = Absint.report ~env:(env_of db) (bind db "SELECT x FROM a WHERE x > 1") in
  Alcotest.(check bool) "report names the column" true
    (String.length r > 0 && String.sub r 0 1 <> " ");
  let states, diags = Absint.annotate ~env:(env_of db) (bind db "SELECT x FROM a") in
  Alcotest.(check bool) "root first" true
    (match states with (path, _) :: _ -> String.length path > 0 | [] -> false);
  Alcotest.(check int) "clean plan, no diagnostics" 0 (List.length diags)

(* ---- The differential sanitizer ---- *)

let test_sanitizer_corpus () =
  let was = Sanitize.enabled () in
  Sanitize.enable ();
  Fun.protect ~finally:(fun () -> if not was then Sanitize.disable ()) @@ fun () ->
  let before = Sanitize.checks_run () in
  let run file =
    let db = Db.create () in
    let sql = In_channel.with_open_text file In_channel.input_all in
    Rfview_sql.Parser.statements sql
    |> List.iter (fun stmt -> ignore (Db.exec_statement db stmt))
  in
  List.iter
    (fun f -> run (at_root (Filename.concat "examples/sql" f)))
    [ "quickstart.sql"; "credit_analysis.sql"; "view_derivation.sql";
      "derivability.sql" ];
  Alcotest.(check bool) "sanitizer actually ran" true
    (Sanitize.checks_run () - before > 50)

let test_sanitizer_chaos_matrix () =
  (* 10 seeds; any abstract/concrete disagreement raises and fails *)
  let before = Sanitize.checks_run () in
  for seed = 1 to 10 do
    let r =
      Chaos.run ~config:{ Chaos.default_config with seed; ops = 40 } ~sanitize:true ()
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d ran" seed)
      true (r.Chaos.statements = 40)
  done;
  Alcotest.(check bool) "sanitizer covered the chaos queries" true
    (Sanitize.checks_run () - before > 100);
  Alcotest.(check bool) "sanitizer left disabled" false (Sanitize.enabled ())

(* ---- Registry sync: sources, registry, DESIGN.md ---- *)

(* Every "RFxxx" string occurring in lib/analysis sources (emission
   sites, comments, registry) must be a registered code, and every
   registered code must appear in DESIGN.md and in the generated
   markdown table. *)
let scan_codes text =
  let out = ref [] in
  let n = String.length text in
  for i = 0 to n - 5 do
    if
      text.[i] = 'R' && text.[i + 1] = 'F'
      && (i = 0 || not (Char.uppercase_ascii text.[i - 1] = text.[i - 1]
                        && text.[i - 1] >= 'A' && text.[i - 1] <= 'Z'))
    then
      let d j = text.[i + 2 + j] >= '0' && text.[i + 2 + j] <= '9' in
      if d 0 && d 1 && d 2 && (i + 5 >= n || not (text.[i + 5] >= '0' && text.[i + 5] <= '9'))
      then out := String.sub text i 5 :: !out
  done;
  List.sort_uniq compare !out

let read_file f = In_channel.with_open_text f In_channel.input_all

let test_registry_sync () =
  let registered = List.map (fun i -> i.Diagnostic.r_code) Diagnostic.registry in
  (* the new RF2xx family is registered with explanations *)
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " registered") true (List.mem c registered);
      Alcotest.(check bool)
        (c ^ " explained")
        true
        (String.length (Diagnostic.explain c) > 0))
    [ "RF201"; "RF202"; "RF203"; "RF204"; "RF301"; "RF302"; "RF303"; "RF304" ];
  (* every code mentioned anywhere in lib/analysis is registered *)
  let src_dir = at_root "lib/analysis" in
  let sources =
    Sys.readdir src_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli")
  in
  Alcotest.(check bool) "analysis sources visible" true (List.length sources > 5);
  List.iter
    (fun f ->
      let mentioned = scan_codes (read_file (Filename.concat src_dir f)) in
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (Printf.sprintf "%s mentioned in %s is registered" c f)
            true (List.mem c registered))
        mentioned)
    sources;
  (* every registered code is documented: DESIGN.md + generated table *)
  let design = read_file (at_root "DESIGN.md") in
  let table = Diagnostic.registry_markdown () in
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " in DESIGN.md") true
        (List.mem c (scan_codes design));
      Alcotest.(check bool) (c ^ " in --codes-md table") true
        (List.mem c (scan_codes table)))
    registered;
  (* the committed DESIGN.md table is the generated one, verbatim: a
     registry change without regenerating the table fails here *)
  let contains_sub ~sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool)
    "DESIGN.md registry table is regenerated (rfview lint --codes-md)" true
    (contains_sub ~sub:(String.trim table) design)

let () =
  Alcotest.run "absint"
    [
      ( "domain",
        [
          Alcotest.test_case "interval lattice" `Quick test_itv_lattice;
          Alcotest.test_case "interval widening" `Quick test_itv_widen;
          Alcotest.test_case "interval arithmetic" `Quick test_itv_arith;
          Alcotest.test_case "cardinality" `Quick test_card;
          Alcotest.test_case "three-valued booleans" `Quick test_b3;
          Alcotest.test_case "abstraction round trip" `Quick test_abstraction_roundtrip;
          Alcotest.test_case "sequence facts" `Quick test_seqfact;
        ] );
      ( "transfer",
        [
          Alcotest.test_case "scan + project" `Quick test_transfer_scan_project;
          Alcotest.test_case "filter refinement" `Quick test_transfer_filter_refines;
          Alcotest.test_case "aggregate" `Quick test_transfer_aggregate;
          Alcotest.test_case "cumulative window" `Quick test_transfer_window_cumsum;
          Alcotest.test_case "union + limit" `Quick test_transfer_union_limit;
          Alcotest.test_case "report + annotate" `Quick test_report_and_annotate;
        ] );
      ( "rf2xx",
        [
          Alcotest.test_case "RF201 empty predicate" `Quick test_rf201;
          Alcotest.test_case "RF202 division by zero" `Quick test_rf202;
          Alcotest.test_case "RF203 NULL-poisoned aggregate" `Quick test_rf203;
          Alcotest.test_case "RF204 overflow risk" `Quick test_rf204;
        ] );
      ( "sanitizer",
        [
          Alcotest.test_case "example corpus" `Quick test_sanitizer_corpus;
          Alcotest.test_case "chaos seed matrix" `Slow test_sanitizer_chaos_matrix;
        ] );
      ( "registry",
        [ Alcotest.test_case "sources/registry/docs in sync" `Quick test_registry_sync ] );
    ]
