(* Scan sharing: the static sharing certificates (Analysis.Share), the
   resource interpreter (Analysis.Cost) and certificate-gated shared
   base scans in the engine's batch maintenance.  The matrix test
   enforces the defining lockstep property: the engine drives a set of
   live sequence-view states from one shared partition iterator exactly
   when Share puts their definitions into one shareable class.  The
   qcheck property holds shared maintenance to the differential
   standard: under random batched DML streams, a share-scans-on database
   stays bit-identical to a share-scans-off database and to a fresh
   evaluation of every definition. *)

open Rfview_relalg
module Db = Rfview_engine.Database
module Parser = Rfview_sql.Parser
module Share = Rfview_analysis.Share
module Cost = Rfview_analysis.Cost
module Binder = Rfview_planner.Binder
module Diag = Rfview_analysis.Diagnostic

(* Checker-verify every plan, bag-compare every maintenance step against
   recomputation, and — the point of this suite — run the shared-scan
   differential validator inside the engine on every shared batch. *)
let () = Rfview_analysis.Verify.enable ()

(* ---- Fixtures ---- *)

let seq_ddl = "CREATE TABLE seq (grp INT, pos INT, val FLOAT)"

let seq_rows =
  "INSERT INTO seq VALUES (1, 1, 10.5), (1, 2, 20.25), (1, 3, 15.125), \
   (2, 1, 5.75), (2, 2, 25.0), (3, 1, 7.5)"

let fixture_db ?config () =
  let db = Db.create ?config () in
  ignore (Db.exec db seq_ddl);
  ignore (Db.exec db seq_rows);
  db

(* The view matrix: definitions over seq plus the scan-share class each
   should land in ([None] = not sequence-shaped, never in any class). *)
let views =
  [
    ( "v_cum",
      "SELECT grp, pos, val, SUM(val) OVER (PARTITION BY grp ORDER BY pos \
       ROWS UNBOUNDED PRECEDING) AS s FROM seq",
      Some "grp/pos" );
    ( "v_mvg",
      "SELECT grp, pos, val, AVG(val) OVER (PARTITION BY grp ORDER BY pos \
       ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) AS a FROM seq",
      Some "grp/pos" );
    ( "v_low",
      "SELECT grp, pos, val, MIN(val) OVER (PARTITION BY grp ORDER BY pos \
       ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS m FROM seq",
      Some "grp/pos" );
    ( "v_all",
      "SELECT grp, pos, val, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED \
       PRECEDING) AS s FROM seq",
      Some "/pos" );
    ( "v_byval",
      "SELECT grp, pos, val, SUM(val) OVER (PARTITION BY grp ORDER BY val \
       ROWS UNBOUNDED PRECEDING) AS s FROM seq",
      Some "grp/val" );
    ( "v_group",
      "SELECT grp, SUM(val) AS total FROM seq GROUP BY grp",
      None );
  ]

let create_views db =
  List.iter
    (fun (name, def, _) ->
      ignore
        (Db.exec db (Printf.sprintf "CREATE MATERIALIZED VIEW %s AS %s" name def)))
    views

(* ---- Bit identity (as in test_ivm) ---- *)

let value_same_bits a b =
  match (a, b) with
  | Value.Float x, Value.Float y ->
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | _ -> Value.equal a b

let row_same_bits a b =
  Row.arity a = Row.arity b
  && List.for_all
       (fun i -> value_same_bits (Row.get a i) (Row.get b i))
       (List.init (Row.arity a) Fun.id)

let bit_identical a b =
  let rows r = Array.to_list (Relation.rows (Relation.sorted_by_all r)) in
  let ra = rows a and rb = rows b in
  List.length ra = List.length rb && List.for_all2 row_same_bits ra rb

let check_view db name def =
  if
    not
      (bit_identical
         (Db.query db (Printf.sprintf "SELECT * FROM %s" name))
         (Db.query db def))
  then Alcotest.failf "%s diverged from a fresh evaluation of its definition" name

(* ---- Static certificates ---- *)

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let spec_of name def =
  Share.scan_spec ~view:name (Parser.query def)

let test_scan_spec () =
  List.iter
    (fun (name, def, expect) ->
      match (spec_of name def, expect) with
      | None, None -> ()
      | Some sp, Some _ ->
        Alcotest.(check string) (name ^ " base") "seq" sp.Share.sp_base
      | Some _, None -> Alcotest.failf "%s: unexpectedly sequence-shaped" name
      | None, Some _ -> Alcotest.failf "%s: scan_spec missed the sequence shape" name)
    views;
  (* a RANGE frame is outside the sequence shape *)
  Alcotest.(check bool)
    "RANGE frame rejected" true
    (spec_of "v"
       "SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos RANGE \
        BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) AS s FROM seq"
    = None)

let test_certify_pair () =
  let get name =
    let _, def, _ = List.find (fun (n, _, _) -> n = name) views in
    Option.get (spec_of name def)
  in
  let holds ob_name obs =
    match List.find_opt (fun o -> o.Share.ob_name = ob_name) obs with
    | Some o -> o.Share.ob_holds
    | None -> Alcotest.failf "obligation %s missing" ob_name
  in
  let compat = Share.certify_pair (get "v_cum") (get "v_mvg") in
  List.iter
    (fun name -> Alcotest.(check bool) ("compatible: " ^ name) true (holds name compat))
    [
      "same-base";
      "partition-prefix-compatible";
      "order-subsumed";
      "no-cross-view-state";
    ];
  Alcotest.(check bool) "compatible pair" true
    (Share.compatible (get "v_cum") (get "v_mvg"));
  (* a coarser PARTITION BY prefix needs its own merge pass *)
  let coarser = Share.certify_pair (get "v_cum") (get "v_all") in
  Alcotest.(check bool) "proper prefix fails" false
    (holds "partition-prefix-compatible" coarser);
  (* a different ORDER BY column is not order-subsumed *)
  let reordered = Share.certify_pair (get "v_cum") (get "v_byval") in
  Alcotest.(check bool) "different order fails" false
    (holds "order-subsumed" reordered)

let test_classify () =
  let specs =
    List.filter_map (fun (name, def, _) -> spec_of name def) views
  in
  let groups = Share.classify specs in
  let members g = List.map (fun sp -> sp.Share.sp_view) g.Share.g_members in
  Alcotest.(check (list (list string)))
    "scan-share classes"
    [ [ "v_cum"; "v_mvg"; "v_low" ]; [ "v_all" ]; [ "v_byval" ] ]
    (List.map members groups);
  Alcotest.(check (list bool))
    "shareable verdicts" [ true; false; false ]
    (List.map Share.shareable groups);
  match Share.diagnostics groups with
  | [ d ] ->
    Alcotest.(check string) "advisory code" "RF401" d.Diag.code;
    List.iter
      (fun name ->
        Alcotest.(check bool) (name ^ " named in RF401") true
          (contains_sub ~sub:name d.Diag.message))
      [ "v_cum"; "v_mvg"; "v_low" ]
  | ds -> Alcotest.failf "expected exactly one RF401, got %d" (List.length ds)

(* ---- Cert iff runtime ----

   [Db.share_classes] must list exactly the classes that are BOTH
   runtime-eligible (live sequence states agreeing on the scan key) and
   statically certified — and flipping [share_scans] off empties it
   without changing any view's contents. *)

let test_cert_iff_runtime () =
  let db = fixture_db () in
  create_views db;
  (* every sequence-shaped view got a live state; the GROUP BY view
     must be under derived maintenance instead *)
  List.iter
    (fun (name, _, expect_seq) ->
      Alcotest.(check bool)
        (name ^ " has a sequence state")
        (expect_seq <> None)
        (Db.view_state db name <> None))
    views;
  Alcotest.(check (list (list string)))
    "engine share classes" [ [ "v_cum"; "v_low"; "v_mvg" ] ]
    (Db.share_classes db ~table:"seq");
  (* lockstep with the static side: the engine's classes are exactly
     the shareable classes of the live views' definitions *)
  let static_shared =
    Share.classify
      (List.filter_map
         (fun (name, def, _) ->
           if Db.view_state db name <> None then spec_of name def else None)
         views)
    |> List.filter Share.shareable
    |> List.map (fun g ->
           List.sort compare
             (List.map (fun sp -> sp.Share.sp_view) g.Share.g_members))
  in
  Alcotest.(check (list (list string)))
    "cert iff runtime" static_shared
    (Db.share_classes db ~table:"seq");
  (* no classes against an unrelated table *)
  ignore (Db.exec db "CREATE TABLE other (k INT)");
  Alcotest.(check (list (list string)))
    "no classes for other tables" []
    (Db.share_classes db ~table:"other");
  (* the config gate *)
  Db.reconfigure db { (Db.config db) with Db.share_scans = false };
  Alcotest.(check (list (list string)))
    "share_scans off" []
    (Db.share_classes db ~table:"seq")

(* A quarantined / stale member must drop out of the class. *)
let test_stale_member_leaves_class () =
  let db = fixture_db () in
  create_views db;
  ignore (Db.exec db "DROP VIEW v_low");
  Alcotest.(check (list (list string)))
    "class shrinks" [ [ "v_cum"; "v_mvg" ] ]
    (Db.share_classes db ~table:"seq");
  ignore (Db.exec db "DROP VIEW v_mvg");
  Alcotest.(check (list (list string)))
    "singleton is not a class" []
    (Db.share_classes db ~table:"seq")

(* ---- Shared maintenance correctness (directed) ---- *)

let batch_steps =
  [
    [ "INSERT INTO seq VALUES (1, 4, 30.5), (2, 3, 12.25), (4, 1, 9.0)" ];
    [
      "UPDATE seq SET val = val + 0.125 WHERE grp = 1";
      "DELETE FROM seq WHERE grp = 2 AND pos = 1";
    ];
    [
      "INSERT INTO seq VALUES (1, 0, 2.5)";
      "UPDATE seq SET pos = 9 WHERE grp = 3 AND pos = 1" (* order move *);
      "UPDATE seq SET grp = 4 WHERE grp = 1 AND pos = 4" (* partition move *);
    ];
    [ "DELETE FROM seq WHERE grp = 4" ];
  ]

let run_steps db =
  List.iter
    (fun stmts ->
      match stmts with
      | [ sql ] -> ignore (Db.exec db sql)
      | stmts ->
        Db.with_batch db (fun () ->
            List.iter (fun sql -> ignore (Db.exec db sql)) stmts))
    batch_steps

let test_shared_batch_maintenance () =
  let db = fixture_db () in
  create_views db;
  run_steps db;
  List.iter (fun (name, def, _) -> check_view db name def) views;
  (* the class survived the whole stream (no quarantine, no fallback) *)
  Alcotest.(check (list (list string)))
    "class intact after DML" [ [ "v_cum"; "v_low"; "v_mvg" ] ]
    (Db.share_classes db ~table:"seq")

let test_share_scans_off_equivalent () =
  let on = fixture_db () in
  let off =
    fixture_db ~config:{ Db.default_config with Db.share_scans = false } ()
  in
  create_views on;
  create_views off;
  run_steps on;
  run_steps off;
  List.iter
    (fun (name, _, _) ->
      let sql = Printf.sprintf "SELECT * FROM %s" name in
      if not (bit_identical (Db.query on sql) (Db.query off sql)) then
        Alcotest.failf "%s: shared and per-view maintenance disagree" name)
    views

(* The installed differential validator itself: bit-equal relations
   pass, a single flipped float bit fails. *)
let test_shared_scan_validator () =
  let schema = Schema.make [ Schema.column "x" Dtype.Float ] in
  let rel v = Relation.make schema [ Row.make [ Value.Float v ] ] in
  Rfview_analysis.Verify.check_shared_scan ~view:"v" ~shared:(rel 1.5)
    ~per_view:(rel 1.5);
  Alcotest.check_raises "divergence raises"
    (Rfview_analysis.Verify.Not_preserved
       "matview v: shared-scan maintenance diverged from the per-view scan \
        (1 rows vs 1)")
    (fun () ->
      Rfview_analysis.Verify.check_shared_scan ~view:"v" ~shared:(rel 1.5)
        ~per_view:(rel (Int64.float_of_bits (Int64.succ (Int64.bits_of_float 1.5)))))

(* ---- Cost interpreter ---- *)

let cost_of db ?budget ?env sql =
  let logical = Binder.bind_query (Db.binder_catalog db) (Parser.query sql) in
  let env =
    match env with
    | Some e -> e
    | None ->
      let cat = Db.catalog_view db in
      fun name ->
        (try Some (cat.Rfview_planner.Physical.table_contents name)
         with _ -> None)
  in
  Cost.analyze ~env ?budget logical

let test_cost_bounded_frames () =
  let db = fixture_db () in
  (* cumulative: w+2 = 2 resident rows, no diagnostics *)
  let r =
    cost_of db
      "SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos ROWS \
       UNBOUNDED PRECEDING) AS s FROM seq"
  in
  Alcotest.(check (list string)) "cumulative: no diags" []
    (List.map (fun d -> d.Diag.code) r.Cost.diags);
  Alcotest.(check bool) "cumulative: bounded" true (r.Cost.total_bytes <> None);
  (match r.Cost.ops with
   | [ op ] ->
     Alcotest.(check int) "cumulative: w+2 cache" 2 op.Cost.oc_state_rows.lo
   | ops -> Alcotest.failf "expected one stateful op, got %d" (List.length ops));
  (* sliding l..h: w+2 = l+h+3 resident rows (capped by the input) *)
  let r =
    cost_of db
      "SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos ROWS \
       BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS s FROM seq"
  in
  Alcotest.(check (list string)) "sliding: no diags" []
    (List.map (fun d -> d.Diag.code) r.Cost.diags)

let test_cost_rf402_rf403 () =
  let db = fixture_db () in
  let range_sql =
    "SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos RANGE \
     BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) AS s FROM seq"
  in
  (* RANGE: whole partition resident -> RF402; contents known, so the
     footprint is still bounded and a tiny budget adds RF403 *)
  let r = cost_of db range_sql in
  Alcotest.(check (list string)) "RF402 fires" [ "RF402" ]
    (List.map (fun d -> d.Diag.code) r.Cost.diags);
  let r = cost_of db ~budget:10 range_sql in
  Alcotest.(check (list string)) "RF402 + RF403 under a tiny budget"
    [ "RF402"; "RF403" ]
    (List.sort compare (List.map (fun d -> d.Diag.code) r.Cost.diags));
  (* unknown contents: the partition state cannot be bounded at all *)
  let r = cost_of db ~env:(fun _ -> None) range_sql in
  Alcotest.(check bool) "unknown contents: unbounded" true
    (r.Cost.total_bytes = None);
  Alcotest.(check bool) "unknown contents: RF403" true
    (List.exists (fun d -> d.Diag.code = "RF403") r.Cost.diags);
  (* streaming plans hold nothing *)
  let r = cost_of db "SELECT grp FROM seq WHERE val > 0" in
  Alcotest.(check (list string)) "streaming: stateless" []
    (List.map (fun (o : Cost.op_cost) -> o.Cost.oc_op) r.Cost.ops);
  Alcotest.(check bool) "streaming: zero bytes" true (r.Cost.total_bytes = Some 0)

(* ---- Random batched DML streams (qcheck) ---- *)

type share_op =
  | Ins of int * int * int  (* grp, pos, val tenths *)
  | Del of int * int        (* grp, pos *)
  | Bump of int             (* grp: val += 0.125 *)
  | Move_pos of int * int * int  (* grp, pos, new pos *)
  | Move_grp of int * int * int  (* grp, pos, new grp *)

let sql_of_op = function
  | Ins (g, p, v) ->
    Printf.sprintf "INSERT INTO seq VALUES (%d, %d, %d.125)" g p v
  | Del (g, p) ->
    Printf.sprintf "DELETE FROM seq WHERE grp = %d AND pos = %d" g p
  | Bump g -> Printf.sprintf "UPDATE seq SET val = val + 0.125 WHERE grp = %d" g
  | Move_pos (g, p, p') ->
    Printf.sprintf "UPDATE seq SET pos = %d WHERE grp = %d AND pos = %d" p' g p
  | Move_grp (g, p, g') ->
    Printf.sprintf "UPDATE seq SET grp = %d WHERE grp = %d AND pos = %d" g' g p

let arb_share_stream =
  QCheck.make
    ~print:(fun chunks ->
      String.concat " | "
        (List.map
           (fun ops -> String.concat "; " (List.map sql_of_op ops))
           chunks))
    QCheck.Gen.(
      let grp = int_range 1 3 and pos = int_range 1 6 in
      let op =
        frequency
          [
            (4, map (fun ((g, p), v) -> Ins (g, p, v)) (pair (pair grp pos) (int_range (-9) 9)));
            (2, map (fun (g, p) -> Del (g, p)) (pair grp pos));
            (2, map (fun g -> Bump g) grp);
            (1, map (fun ((g, p), p') -> Move_pos (g, p, p')) (pair (pair grp pos) (int_range 1 9)));
            (1, map (fun ((g, p), g') -> Move_grp (g, p, g')) (pair (pair grp pos) grp));
          ]
      in
      list_size (int_range 1 4) (list_size (int_range 1 5) op))

(* The §2.3 sequence machinery assumes unique (partition, order) keys —
   a duplicate order key makes the maintained equal-key order diverge
   from recomputation's stable sort (a long-standing, documented
   limitation; see the matrix note in test_ivm.ml).  The interpreter
   below replays a raw stream against an occupancy model so every
   executed statement keeps keys unique: colliding inserts slide to a
   free position, colliding moves are dropped.  Inserts and deletes of
   duplicate keys are fine (a fresh row is appended physically last,
   matching the stable recompute sort) — only a *move* (normalized by
   the engine to delete + reinsert while the row keeps its physical
   slot) must land on an order key that is free both in the target
   partition and globally: v_all has no PARTITION BY, so its order key
   is pos across the whole table. *)
let concretize chunks =
  let occupied = Hashtbl.create 16 in
  let pos_count = Hashtbl.create 16 in
  (* order keys a Move ever landed on: the moved row keeps its physical
     slot, so a later insert at the same table-wide key would make the
     equal-key physical order diverge from insertion order — the one
     duplicate shape the stable recompute sort does NOT absorb *)
  let moved_pos = Hashtbl.create 16 in
  (* v_byval keys on (grp, val), so that pair must stay unique too.  We
     track every live row's val in eighths (exact, float-free) and
     rewrite inserted vals to a fresh monotone series (1000.125,
     1010.125, ...) spaced wider than any possible number of Bumps in a
     stream (<= 20 ops, each Bump shifts one group by 1/8) — so an
     insert can never collide with any live, bumped, or deleted val.
     Only Move_grp needs an exact check against its target group. *)
  let rowval = Hashtbl.create 16 in
  let fresh = ref 1000 in
  let pcount p = try Hashtbl.find pos_count p with Not_found -> 0 in
  let add g p v8 =
    Hashtbl.replace occupied (g, p) ();
    Hashtbl.replace rowval (g, p) v8;
    Hashtbl.replace pos_count p (pcount p + 1)
  in
  let remove g p =
    Hashtbl.remove occupied (g, p);
    Hashtbl.remove rowval (g, p);
    Hashtbl.replace pos_count p (pcount p - 1)
  in
  let val_in g v8 =
    Hashtbl.fold (fun (g', _) v acc -> acc || (g' = g && v = v8)) rowval false
  in
  List.iter
    (fun (g, p, v8) -> add g p v8)
    [ (1, 1, 84); (1, 2, 162); (1, 3, 121); (2, 1, 46); (2, 2, 200); (3, 1, 60) ];
  let mem g p = Hashtbl.mem occupied (g, p) in
  List.map
    (List.filter_map (fun op ->
         match op with
         | Ins (g, p, _) ->
           let p = ref p in
           while mem g !p || Hashtbl.mem moved_pos !p do
             p := !p + 7
           done;
           let v = !fresh in
           fresh := !fresh + 10;
           add g !p ((8 * v) + 1);
           Some (sql_of_op (Ins (g, !p, v)))
         | Del (g, p) ->
           if mem g p then remove g p;
           Some (sql_of_op op)
         | Bump g ->
           (* uniform shift of one whole group: preserves within-group
              val distinctness and relative order, so v_byval's key stays
              unique — but the absolute vals move, so track them *)
           Hashtbl.fold
             (fun (g', p) v acc -> if g' = g then ((g', p), v) :: acc else acc)
             rowval []
           |> List.iter (fun (k, v) -> Hashtbl.replace rowval k (v + 1));
           Some (sql_of_op op)
         | Move_pos (g, p, p') ->
           if mem g p && pcount p' = 0 && p <> p' then begin
             let v8 = Hashtbl.find rowval (g, p) in
             remove g p;
             add g p' v8;
             Hashtbl.replace moved_pos p' ();
             Some (sql_of_op op)
           end
           else None
         | Move_grp (g, p, g') ->
           (* reinserts at the same pos: only safe if this row is the
              sole holder of pos table-wide (v_all's order key) and its
              val is free in the target group (v_byval's order key) *)
           if
             mem g p
             && (not (mem g' p))
             && pcount p = 1 && g <> g'
             && not (val_in g' (Hashtbl.find rowval (g, p)))
           then begin
             let v8 = Hashtbl.find rowval (g, p) in
             remove g p;
             add g' p v8;
             Hashtbl.replace moved_pos p ();
             Some (sql_of_op op)
           end
           else None))
    chunks

let prop_shared_stream chunks =
  let on = fixture_db () in
  let off =
    fixture_db ~config:{ Db.default_config with Db.share_scans = false } ()
  in
  create_views on;
  create_views off;
  List.for_all
    (fun stmts ->
      let run db =
        match stmts with
        | [ sql ] -> ignore (Db.exec db sql)
        | stmts ->
          Db.with_batch db (fun () ->
              List.iter (fun sql -> ignore (Db.exec db sql)) stmts)
      in
      run on;
      run off;
      List.for_all
        (fun (name, def, _) ->
          let sql = Printf.sprintf "SELECT * FROM %s" name in
          bit_identical (Db.query on sql) (Db.query off sql)
          && bit_identical (Db.query on sql) (Db.query on def))
        views)
    (List.filter (fun stmts -> stmts <> []) (concretize chunks))

let () =
  Alcotest.run "share"
    [
      ( "certificates",
        [
          Alcotest.test_case "scan specs" `Quick test_scan_spec;
          Alcotest.test_case "pairwise obligations" `Quick test_certify_pair;
          Alcotest.test_case "classification + RF401" `Quick test_classify;
        ] );
      ( "cert iff runtime",
        [
          Alcotest.test_case "engine matches certificates" `Quick
            test_cert_iff_runtime;
          Alcotest.test_case "dropped member leaves class" `Quick
            test_stale_member_leaves_class;
        ] );
      ( "shared maintenance",
        [
          Alcotest.test_case "batched DML, validated" `Quick
            test_shared_batch_maintenance;
          Alcotest.test_case "share_scans off is equivalent" `Quick
            test_share_scans_off_equivalent;
          Alcotest.test_case "differential validator" `Quick
            test_shared_scan_validator;
        ] );
      ( "cost",
        [
          Alcotest.test_case "bounded frames" `Quick test_cost_bounded_frames;
          Alcotest.test_case "RF402 / RF403" `Quick test_cost_rf402_rf403;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make ~count:40
               ~name:"random batched DML: shared == per-view == refresh"
               arb_share_stream prop_shared_stream);
        ] );
    ]
