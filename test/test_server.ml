(* Session-server tests: the domain pool, the wire format, and real
   socket round-trips against a running server — including concurrent
   clients mixing snapshot reads with writer-serialized writes.

   RFVIEW_TEST_DOMAINS (default 4) sizes the pool for the concurrent
   suite; CI runs at 1 and at 4. *)

module Pool = Rfview_server.Pool
module Wire = Rfview_server.Wire
module Server = Rfview_server.Server
module Session = Rfview.Session

let test_domains =
  match Sys.getenv_opt "RFVIEW_TEST_DOMAINS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

(* ---- Pool ---- *)

let test_pool_runs_jobs () =
  let p = Pool.create ~domains:test_domains in
  let hits = Atomic.make 0 in
  let promises =
    List.init 50 (fun i -> Pool.async p (fun () -> Atomic.incr hits; i * i))
  in
  let results = List.map Pool.await promises in
  Pool.shutdown p;
  Alcotest.(check int) "every job ran" 50 (Atomic.get hits);
  Alcotest.(check (list int)) "results in submission order"
    (List.init 50 (fun i -> i * i))
    results

let test_pool_propagates_exceptions () =
  let p = Pool.create ~domains:1 in
  let pr = Pool.async p (fun () -> failwith "boom") in
  (match Pool.await pr with
   | _ -> Alcotest.fail "await must re-raise"
   | exception Failure m -> Alcotest.(check string) "the job's exception" "boom" m);
  Pool.shutdown p;
  (match Pool.submit p (fun () -> ()) with
   | () -> Alcotest.fail "submit after shutdown must refuse"
   | exception Invalid_argument _ -> ());
  (* shutdown is idempotent *)
  Pool.shutdown p

(* ---- Wire ---- *)

let test_wire_roundtrip () =
  Alcotest.(check string) "escaping" "a\\\"b\\\\c\\nd"
    (Wire.json_escape "a\"b\\c\nd");
  let obj = Wire.ok_fields [ ("n", Wire.jint 3); ("s", Wire.jstr "x y") ] in
  Alcotest.(check (option string)) "scalar field" (Some "3") (Wire.field obj "n");
  Alcotest.(check (option string)) "string field" (Some "x y")
    (Wire.field obj "s");
  Alcotest.(check (option string)) "ok field" (Some "true") (Wire.field obj "ok");
  Alcotest.(check (option string)) "missing field" None (Wire.field obj "zzz");
  Alcotest.(check (pair string string)) "split" ("query", "SELECT 1")
    (Wire.split "query  SELECT 1 ");
  Alcotest.(check (pair string string)) "split bare verb" ("ping", "")
    (Wire.split "ping\n")

(* ---- Server round-trips ---- *)

let with_server f =
  let session = Session.open_in_memory () in
  let srv = Server.start ~domains:test_domains ~session ~port:0 () in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Session.close session)
    (fun () -> f srv session)

let req c line = Server.Client.request c line

let expect_ok what resp =
  if Wire.field resp "ok" <> Some "true" then
    Alcotest.failf "%s: expected ok, got %s" what resp;
  resp

let test_server_roundtrips () =
  with_server (fun srv _session ->
      let c = Server.Client.connect ~port:(Server.port srv) in
      Fun.protect ~finally:(fun () -> Server.Client.disconnect c)
        (fun () ->
          ignore (expect_ok "ping" (req c "ping"));
          ignore (expect_ok "exec create" (req c "exec CREATE TABLE t (a INT)"));
          ignore (expect_ok "exec insert" (req c "exec INSERT INTO t VALUES (1)"));
          let r = expect_ok "query" (req c "query SELECT * FROM t") in
          Alcotest.(check (option string)) "one row" (Some "1")
            (Wire.field r "rows");
          (* pin a snapshot, write past it, the pin still answers old *)
          let o = expect_ok "open" (req c "open") in
          let pinned_rows = Wire.field o "lsn" in
          Alcotest.(check bool) "open returns an lsn" true (pinned_rows <> None);
          ignore (expect_ok "exec 2" (req c "exec INSERT INTO t VALUES (2)"));
          let r = expect_ok "pinned query" (req c "query SELECT * FROM t") in
          Alcotest.(check (option string)) "pinned snapshot is historical"
            (Some "1") (Wire.field r "rows");
          ignore (expect_ok "close" (req c "close"));
          let r = expect_ok "fresh query" (req c "query SELECT * FROM t") in
          Alcotest.(check (option string)) "unpinned read is at tip" (Some "2")
            (Wire.field r "rows")))

let test_server_batch_and_errors () =
  with_server (fun srv _session ->
      let c = Server.Client.connect ~port:(Server.port srv) in
      Fun.protect ~finally:(fun () -> Server.Client.disconnect c)
        (fun () ->
          ignore (expect_ok "create" (req c "exec CREATE TABLE t (a INT)"));
          (* batch is a multi-line request: send header + payload raw *)
          let r =
            req c "batch 2\nINSERT INTO t VALUES (1)\nINSERT INTO t VALUES (2)"
          in
          ignore (expect_ok "batch" r);
          Alcotest.(check (option string)) "both executed" (Some "2")
            (Wire.field r "executed");
          let r = expect_ok "count" (req c "query SELECT * FROM t") in
          Alcotest.(check (option string)) "rows committed" (Some "2")
            (Wire.field r "rows");
          (* protocol errors are structured, connection survives *)
          let r = req c "exec INSERT INTO nope VALUES (1)" in
          Alcotest.(check (option string)) "exec error is not ok" (Some "false")
            (Wire.field r "ok");
          let r = req c "frobnicate" in
          Alcotest.(check (option string)) "unknown verb" (Some "false")
            (Wire.field r "ok");
          ignore (expect_ok "still alive" (req c "ping"))))

let test_server_concurrent_clients () =
  with_server (fun srv _session ->
      let port = Server.port srv in
      let c0 = Server.Client.connect ~port in
      ignore (expect_ok "create" (req c0 "exec CREATE TABLE t (a INT)"));
      ignore (expect_ok "seed" (req c0 "exec INSERT INTO t VALUES (0)"));
      Server.Client.disconnect c0;
      let clients = max 2 test_domains in
      let wrong = Atomic.make 0 in
      let worker i =
        let c = Server.Client.connect ~port in
        Fun.protect ~finally:(fun () -> Server.Client.disconnect c)
          (fun () ->
            for j = 1 to 10 do
              if i = 0 then
                (* one writer client *)
                ignore
                  (expect_ok "write"
                     (req c
                        (Printf.sprintf "exec INSERT INTO t VALUES (%d)"
                           ((i * 100) + j))))
              else begin
                (* reader clients: rows and lsn must be mutually consistent
                   (rows = lsn - 1: one DDL, then one row per commit) *)
                let r = expect_ok "read" (req c "query SELECT * FROM t") in
                match (Wire.field r "rows", Wire.field r "lsn") with
                | Some rows, Some lsn ->
                  if int_of_string rows <> int_of_string lsn - 1 then
                    Atomic.incr wrong
                | _ -> Atomic.incr wrong
              end
            done)
      in
      let ds = List.init clients (fun i -> Domain.spawn (fun () -> worker i)) in
      List.iter Domain.join ds;
      Alcotest.(check int) "every read was a consistent commit point" 0
        (Atomic.get wrong))

let () =
  Alcotest.run "server"
    [
      ( "pool",
        [
          Alcotest.test_case "runs jobs" `Quick test_pool_runs_jobs;
          Alcotest.test_case "propagates exceptions" `Quick
            test_pool_propagates_exceptions;
        ] );
      ("wire", [ Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip ]);
      ( "protocol",
        [
          Alcotest.test_case "roundtrips" `Quick test_server_roundtrips;
          Alcotest.test_case "batch + errors" `Quick
            test_server_batch_and_errors;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case
            (Printf.sprintf "%d concurrent clients" (max 2 test_domains))
            `Slow test_server_concurrent_clients;
        ] );
    ]
