(* Durability tests: the checksummed WAL, checkpoints, crash recovery
   and the crash-recovery chaos harness.

   Every test works in its own directory under the build sandbox; the
   crash model is abandoning the in-memory handle (the engine fsyncs per
   statement) plus direct file surgery for torn writes and corruption. *)

open Rfview_relalg
module Db = Rfview_engine.Database
module Catalog = Rfview_engine.Catalog
module Checkpoint = Rfview_engine.Checkpoint
module Fault = Rfview_engine.Fault
module Wal = Rfview_engine.Wal
module Chaos = Rfview_workload.Chaos

let with_clean_faults f =
  Fault.reset ();
  Fun.protect ~finally:Fault.reset f

(* A fresh (emptied) database directory per test. *)
let fresh_dir name =
  let dir = "tdb_" ^ name in
  if Sys.file_exists dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
  dir

let wal_path dir = Filename.concat dir "log.wal"

let check_same_bag what a b =
  if not (Relation.equal_bag a b) then
    Alcotest.failf "%s:@.left:@.%s@.right:@.%s" what
      (Relation.render (Relation.sorted_by_all a))
      (Relation.render (Relation.sorted_by_all b))

let setup_sql =
  [
    "CREATE TABLE seq (pos INT, val FLOAT)";
    "INSERT INTO seq VALUES (1, 10), (2, 20), (3, 30)";
    "CREATE MATERIALIZED VIEW v AS SELECT pos, val, SUM(val) OVER (ORDER BY \
     pos ROWS UNBOUNDED PRECEDING) AS s FROM seq";
    "CREATE INDEX seq_pos ON seq (pos)";
  ]

let build dir =
  let db = Db.open_durable dir in
  List.iter (fun sql -> ignore (Db.exec db sql)) setup_sql;
  db

let dump db = Db.query db "SELECT pos, val FROM seq"
let dump_view db = Db.query db "SELECT * FROM v"

(* ---- Round trips ---- *)

let test_roundtrip_wal_only () =
  let dir = fresh_dir "roundtrip" in
  let db = build dir in
  ignore (Db.exec db "UPDATE seq SET val = 21 WHERE pos = 2");
  ignore (Db.exec db "DELETE FROM seq WHERE pos = 1");
  let base = dump db and view = dump_view db in
  Db.close db;
  let db', r = Db.recover dir in
  Alcotest.(check bool) "no checkpoint yet" true (r.Db.checkpoint_epoch = None);
  Alcotest.(check bool) "records replayed" true (r.Db.replayed > 0);
  Alcotest.(check bool) "no torn tail" false r.Db.torn;
  Alcotest.(check (list string)) "nothing quarantined" [] r.Db.quarantined;
  check_same_bag "base table" base (dump db');
  check_same_bag "view contents" view (dump_view db');
  Alcotest.(check bool) "incremental state rebuilt" true
    (Db.is_incrementally_maintained db' "v");
  (* the restored index DDL must be live again *)
  Alcotest.(check bool) "index restored" true
    (Catalog.table_index (Db.catalog db') ~table:"seq" ~column:"pos" <> None);
  Db.close db'

(* DML deltas are logged as binary rows, not SQL text: values whose
   decimal rendering is lossy must still round-trip bit-exactly. *)
let test_roundtrip_float_precision () =
  let dir = fresh_dir "floats" in
  let db = build dir in
  ignore (Db.exec db "UPDATE seq SET val = val / 3");
  ignore (Db.exec db "INSERT INTO seq VALUES (7, 0.1)");
  let base = dump db and view = dump_view db in
  Db.close db;
  let db' = Db.open_durable dir in
  check_same_bag "base table (exact floats)" base (dump db');
  check_same_bag "view contents (exact floats)" view (dump_view db');
  Db.close db'

let test_checkpoint_and_suffix () =
  let dir = fresh_dir "ckpt" in
  let db = build dir in
  Db.checkpoint db;
  (* the checkpoint starts a fresh log: the old records are gone *)
  let scan = Wal.scan (wal_path dir) in
  Alcotest.(check int) "fresh epoch" 1 scan.Wal.epoch;
  Alcotest.(check int) "empty log after checkpoint" 0
    (List.length scan.Wal.records);
  ignore (Db.exec db "INSERT INTO seq VALUES (4, 40)");
  ignore (Db.exec db "DELETE FROM seq WHERE pos = 2");
  let base = dump db and view = dump_view db in
  Db.close db;
  let db', r = Db.recover dir in
  Alcotest.(check (option int)) "checkpoint epoch" (Some 1) r.Db.checkpoint_epoch;
  Alcotest.(check int) "only the suffix replays" 2 r.Db.replayed;
  check_same_bag "base table" base (dump db');
  check_same_bag "view contents" view (dump_view db');
  Db.close db'

let test_auto_checkpoint () =
  let dir = fresh_dir "autockpt" in
  let db = build dir in
  Db.set_checkpoint_every db (Some 3);
  for i = 10 to 20 do
    ignore (Db.exec db (Printf.sprintf "INSERT INTO seq VALUES (%d, %d)" i i))
  done;
  let base = dump db in
  Db.close db;
  let db', r = Db.recover dir in
  (match r.Db.checkpoint_epoch with
   | Some e when e >= 1 -> ()
   | other ->
     Alcotest.failf "expected an automatic checkpoint, got epoch %s"
       (match other with None -> "none" | Some e -> string_of_int e));
  check_same_bag "base table" base (dump db');
  Db.close db'

(* ---- Damage ---- *)

let test_torn_tail_truncated () =
  let dir = fresh_dir "torn" in
  let db = build dir in
  let base = dump db in
  Db.close db;
  let frame = Wal.frame (Wal.Statement "CREATE TABLE torn_marker (x INT)") in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 (wal_path dir) in
  output_string oc (String.sub frame 0 (String.length frame - 3));
  close_out oc;
  let db', r = Db.recover dir in
  Alcotest.(check bool) "torn tail detected" true r.Db.torn;
  Alcotest.(check bool) "torn record not replayed" true
    (Catalog.find_table (Db.catalog db') "torn_marker" = None);
  check_same_bag "base table" base (dump db');
  Db.close db';
  (* the tail was truncated off the file: a second recovery is clean *)
  let db'', r' = Db.recover dir in
  Alcotest.(check bool) "tail gone after truncation" false r'.Db.torn;
  check_same_bag "base table again" base (dump db'');
  Db.close db''

(* A crash between the checkpoint rename and the log reset leaves a
   stale WAL (older epoch) next to the new checkpoint; its records are
   already inside the snapshot and must not be replayed again. *)
let test_stale_wal_ignored () =
  let dir = fresh_dir "stale" in
  let db = build dir in
  Db.checkpoint db;
  let base = dump db in
  Db.close db;
  (* forge the pre-checkpoint log: epoch 0 with a poison record *)
  let w = Wal.create (wal_path dir) ~epoch:0 in
  Wal.append w (Wal.Statement "DELETE FROM seq");
  Wal.sync w;
  Wal.close w;
  let db', r = Db.recover dir in
  Alcotest.(check int) "stale log not replayed" 0 r.Db.replayed;
  check_same_bag "base table" base (dump db');
  (* recovery installed a fresh log at the checkpoint's epoch *)
  Alcotest.(check int) "log epoch realigned" 1 (Wal.scan (wal_path dir)).Wal.epoch;
  Db.close db'

let test_wal_ahead_of_checkpoint_fails () =
  let dir = fresh_dir "ahead" in
  let db = build dir in
  Db.checkpoint db;
  Db.close db;
  let w = Wal.create (wal_path dir) ~epoch:9 in
  Wal.close w;
  (match Db.recover dir with
   | _ -> Alcotest.fail "a WAL ahead of the checkpoint must not recover"
   | exception Db.Recovery_error _ -> ())

let test_corrupt_view_state_quarantines () =
  let dir = fresh_dir "corrupt" in
  let db = build dir in
  Db.checkpoint db;
  let base = dump db and view = dump_view db in
  Db.close db;
  Alcotest.(check bool) "state record damaged" true
    (Checkpoint.corrupt_state ~dir ~view:"v");
  let db', r = Db.recover dir in
  Alcotest.(check (list string)) "view quarantined, recovery succeeded" [ "v" ]
    r.Db.quarantined;
  Alcotest.(check bool) "restored stale" true (Db.is_stale db' "v");
  check_same_bag "base table undamaged" base (dump db');
  (* the first read heals the quarantined view by full refresh *)
  check_same_bag "healed contents" view (dump_view db');
  Alcotest.(check bool) "healed" false (Db.is_stale db' "v");
  Db.close db'

let test_corrupt_checkpoint_structure_fails () =
  let dir = fresh_dir "structural" in
  let db = build dir in
  Db.checkpoint db;
  Db.close db;
  (* flip a byte in the first record (the header): structural damage *)
  let path = Checkpoint.file ~dir in
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string data in
  Bytes.set b 9 (Char.chr (Char.code (Bytes.get b 9) lxor 0xFF));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  (match Db.recover dir with
   | _ -> Alcotest.fail "structural checkpoint damage must not recover"
   | exception Db.Recovery_error _ -> ())

(* ---- Fault sites ---- *)

let test_wal_fsync_fault_rolls_back () =
  with_clean_faults (fun () ->
      let dir = fresh_dir "fsync" in
      let db = build dir in
      let base = dump db in
      Fault.arm "wal.fsync" Fault.Always;
      (match Db.exec db "INSERT INTO seq VALUES (9, 90)" with
       | _ -> Alcotest.fail "statement must not commit when fsync fails"
       | exception Fault.Injected "wal.fsync" -> ());
      Fault.disarm "wal.fsync";
      check_same_bag "rolled back in memory" base (dump db);
      Db.close db;
      (* ... and the record is off the disk too *)
      let db' = Db.open_durable dir in
      check_same_bag "not on disk either" base (dump db');
      Db.close db')

let test_checkpoint_fault_keeps_previous () =
  with_clean_faults (fun () ->
      let dir = fresh_dir "ckptfault" in
      let db = build dir in
      Db.checkpoint db;
      ignore (Db.exec db "INSERT INTO seq VALUES (5, 50)");
      let base = dump db in
      Fault.arm "checkpoint.write" (Fault.Nth 3);
      (match Db.checkpoint db with
       | _ -> Alcotest.fail "checkpoint must fail at the armed site"
       | exception Fault.Injected "checkpoint.write" -> ());
      Fault.disarm "checkpoint.write";
      Db.close db;
      (* previous checkpoint + longer WAL still recover everything *)
      let db', r = Db.recover dir in
      Alcotest.(check (option int)) "previous checkpoint intact" (Some 1)
        r.Db.checkpoint_epoch;
      check_same_bag "base table" base (dump db');
      Db.close db')

let test_replay_fault_then_retry () =
  with_clean_faults (fun () ->
      let dir = fresh_dir "replayfault" in
      let db = build dir in
      let base = dump db in
      Db.close db;
      Fault.arm "recover.replay" (Fault.Nth 1);
      (match Db.recover dir with
       | _ -> Alcotest.fail "recovery must fail at the armed replay site"
       | exception Db.Recovery_error _ -> ());
      Fault.disarm "recover.replay";
      (* a failed recovery leaves no writer behind: retry cleanly *)
      let db', r = Db.recover dir in
      Alcotest.(check bool) "retry replays everything" true (r.Db.replayed > 0);
      check_same_bag "base table" base (dump db');
      Db.close db')

(* ---- Batched durability ----

   A batch is atomic on disk: one framed [Wal.Batch] record, one fsync.
   A crash therefore recovers either the pre-batch state (open batch
   abandoned, or the group commit itself faulted) or the post-batch
   state (record on disk) — never a prefix of the batch. *)

let test_crash_mid_batch_rolls_back () =
  with_clean_faults (fun () ->
      let dir = fresh_dir "midbatch" in
      let db = build dir in
      let pre = Chaos.fingerprint db in
      (* the process dies mid-batch: nothing of the batch may survive *)
      (match
         Db.with_batch db (fun () ->
             ignore (Db.exec db "INSERT INTO seq VALUES (8, 80)");
             ignore (Db.exec db "DELETE FROM seq WHERE pos = 1");
             raise Exit)
       with
       | () -> Alcotest.fail "the batch must not complete"
       | exception Exit -> ());
      Alcotest.(check string) "in memory: exactly the pre-batch state" pre
        (Chaos.fingerprint db);
      Db.close db;
      let db', _ = Db.recover dir in
      Alcotest.(check string) "recovered: exactly the pre-batch state" pre
        (Chaos.fingerprint db');
      Db.close db')

let test_batch_group_commit_replay () =
  with_clean_faults (fun () ->
      let dir = fresh_dir "groupcommit" in
      let db = build dir in
      Db.checkpoint db (* fresh log: [replayed] counts only the batch *);
      Db.with_batch db (fun () ->
          ignore (Db.exec db "INSERT INTO seq VALUES (8, 80)");
          ignore (Db.exec db "INSERT INTO seq VALUES (9, 90)");
          ignore (Db.exec db "DELETE FROM seq WHERE pos = 1");
          (* a checkpoint would truncate the log under the open batch *)
          match Db.checkpoint db with
          | () -> Alcotest.fail "checkpoint inside a batch must be rejected"
          | exception Db.Engine_error _ -> ());
      let post = Chaos.fingerprint db in
      Db.close db;
      let db', r = Db.recover dir in
      Alcotest.(check int) "three statements replay as one batch record" 1
        r.Db.replayed;
      Alcotest.(check string) "recovered: exactly the post-batch state" post
        (Chaos.fingerprint db');
      Db.close db')

let test_batch_commit_fault_no_prefix () =
  with_clean_faults (fun () ->
      let dir = fresh_dir "batchwal" in
      let db = build dir in
      let pre = Chaos.fingerprint db in
      (* statements inside the batch only buffer their WAL records, so an
         armed WAL site fires at the group commit — and must take the
         whole batch down with it *)
      List.iter
        (fun site ->
          Fault.arm site Fault.Always;
          (match
             Db.with_batch db (fun () ->
                 ignore (Db.exec db "INSERT INTO seq VALUES (8, 80)");
                 ignore (Db.exec db "UPDATE seq SET val = 11 WHERE pos = 1"))
           with
           | () -> Alcotest.failf "the batch must not commit with %s armed" site
           | exception Fault.Injected _ -> ());
          Fault.disarm site;
          Alcotest.(check string) (site ^ ": whole batch rolled back") pre
            (Chaos.fingerprint db))
        [ "wal.append"; "wal.fsync" ];
      Db.close db;
      let db' = Db.open_durable dir in
      Alcotest.(check string) "no batch left anything on disk" pre
        (Chaos.fingerprint db');
      Db.close db')

let test_crash_chaos_batched () =
  with_clean_faults (fun () ->
      let r =
        Chaos.run_crash
          ~config:
            { Chaos.default_crash_config with Chaos.cc_seed = 13; Chaos.cc_batch = 5 }
          ~dir:(fresh_dir "chaosbatched") ()
      in
      Alcotest.(check bool) "statements exercised" true (r.Chaos.cr_statements > 0);
      Alcotest.(check bool) "crash/recovery cycles" true (r.Chaos.cr_crashes > 0);
      Alcotest.(check bool) "records replayed" true (r.Chaos.cr_replayed > 0))

(* ---- The crash-recovery chaos matrix ----

   A few seeds of the randomized crash stream; aggregated across the
   matrix, every crash variant and every durability fault site must have
   been exercised inside consistent runs.  This is also where the four
   durability sites earn the "fired at least once" bar that
   test_fault.ml's sweep applies to the engine sites. *)

let test_crash_chaos_matrix () =
  with_clean_faults (fun () ->
      let seeds = [ 7; 21; 42 ] in
      let total =
        List.fold_left
          (fun acc seed ->
            let r =
              Chaos.run_crash
                ~config:{ Chaos.default_crash_config with Chaos.cc_seed = seed }
                ~dir:(fresh_dir (Printf.sprintf "chaos%d" seed))
                ()
            in
            {
              Chaos.cr_statements = acc.Chaos.cr_statements + r.Chaos.cr_statements;
              cr_crashes = acc.Chaos.cr_crashes + r.Chaos.cr_crashes;
              cr_torn = acc.Chaos.cr_torn + r.Chaos.cr_torn;
              cr_wal_faults = acc.Chaos.cr_wal_faults + r.Chaos.cr_wal_faults;
              cr_checkpoints = acc.Chaos.cr_checkpoints + r.Chaos.cr_checkpoints;
              cr_checkpoint_faults =
                acc.Chaos.cr_checkpoint_faults + r.Chaos.cr_checkpoint_faults;
              cr_recover_faults =
                acc.Chaos.cr_recover_faults + r.Chaos.cr_recover_faults;
              cr_replayed = acc.Chaos.cr_replayed + r.Chaos.cr_replayed;
              cr_quarantined = acc.Chaos.cr_quarantined + r.Chaos.cr_quarantined;
              cr_heals = acc.Chaos.cr_heals + r.Chaos.cr_heals;
            })
          {
            Chaos.cr_statements = 0;
            cr_crashes = 0;
            cr_torn = 0;
            cr_wal_faults = 0;
            cr_checkpoints = 0;
            cr_checkpoint_faults = 0;
            cr_recover_faults = 0;
            cr_replayed = 0;
            cr_quarantined = 0;
            cr_heals = 0;
          }
          seeds
      in
      let positive what n = Alcotest.(check bool) (what ^ " exercised") true (n > 0) in
      positive "statements" total.Chaos.cr_statements;
      positive "crash/recovery cycles" total.Chaos.cr_crashes;
      positive "torn tails" total.Chaos.cr_torn;
      positive "WAL-site rejections" total.Chaos.cr_wal_faults;
      positive "checkpoints" total.Chaos.cr_checkpoints;
      positive "checkpoint faults" total.Chaos.cr_checkpoint_faults;
      positive "replayed records" total.Chaos.cr_replayed;
      List.iter
        (fun site -> positive ("site " ^ site) (Fault.fired site))
        [ "wal.append"; "wal.fsync"; "checkpoint.write"; "recover.replay" ])

let () =
  Alcotest.run "crash"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "WAL-only recovery" `Quick test_roundtrip_wal_only;
          Alcotest.test_case "float precision" `Quick test_roundtrip_float_precision;
          Alcotest.test_case "checkpoint + suffix" `Quick test_checkpoint_and_suffix;
          Alcotest.test_case "auto checkpoint" `Quick test_auto_checkpoint;
        ] );
      ( "damage",
        [
          Alcotest.test_case "torn tail truncated" `Quick test_torn_tail_truncated;
          Alcotest.test_case "stale WAL ignored" `Quick test_stale_wal_ignored;
          Alcotest.test_case "WAL ahead fails" `Quick test_wal_ahead_of_checkpoint_fails;
          Alcotest.test_case "corrupt view state quarantines" `Quick
            test_corrupt_view_state_quarantines;
          Alcotest.test_case "structural corruption fails" `Quick
            test_corrupt_checkpoint_structure_fails;
        ] );
      ( "fault sites",
        [
          Alcotest.test_case "wal.fsync rolls back" `Quick
            test_wal_fsync_fault_rolls_back;
          Alcotest.test_case "checkpoint.write keeps previous" `Quick
            test_checkpoint_fault_keeps_previous;
          Alcotest.test_case "recover.replay then retry" `Quick
            test_replay_fault_then_retry;
        ] );
      ( "batched durability",
        [
          Alcotest.test_case "crash mid-batch rolls back" `Quick
            test_crash_mid_batch_rolls_back;
          Alcotest.test_case "group commit replays as one record" `Quick
            test_batch_group_commit_replay;
          Alcotest.test_case "commit fault leaves no prefix" `Quick
            test_batch_commit_fault_no_prefix;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "crash matrix" `Slow test_crash_chaos_matrix;
          Alcotest.test_case "batched crash stream" `Slow test_crash_chaos_batched;
        ] );
    ]
