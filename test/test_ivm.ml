(* Generalized IVM: the delta-plan deriver (Planner.Deriv), its
   machine-checkable incrementality certificates (Analysis.Ivmcert) and
   derived maintenance through the engine.  The matrix test enforces the
   defining lockstep property: a view's certificate is valid iff the
   deriver produces a plan, and the engine installs derived maintenance
   exactly for those views (unless the §2.3 sequence machinery claimed
   them first).  The qcheck properties mirror PR 5's batch-equivalence
   property: under random DML streams — per statement and batched — a
   derived-maintained view stays bit-identical to a full refresh. *)

open Rfview_relalg
module Db = Rfview_engine.Database
module Deriv = Rfview_planner.Deriv
module Binder = Rfview_planner.Binder
module Parser = Rfview_sql.Parser
module Ivmcert = Rfview_analysis.Ivmcert

(* Checker-verify every bound plan and bag-compare every maintenance
   step against full recomputation while the suite runs. *)
let () = Rfview_analysis.Verify.enable ()

(* ---- Fixtures ---- *)

let fixture_db () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE fact (k INT, grp INT, amount FLOAT)");
  ignore (Db.exec db "CREATE TABLE dim (k INT, label VARCHAR)");
  ignore
    (Db.exec db
       "INSERT INTO fact VALUES (1, 0, 0.1), (1, 1, 0.2), (2, 1, 0.3), \
        (3, 2, 1.5), (4, 0, -0.7)");
  ignore (Db.exec db "INSERT INTO dim VALUES (1, 'a'), (2, 'b'), (3, 'c')");
  db

let jv_def =
  "SELECT f.k AS k, d.label AS label, f.amount AS amount FROM fact f JOIN dim \
   d ON f.k = d.k"

let gv_def =
  "SELECT grp, SUM(amount) AS total, COUNT(*) AS n FROM fact GROUP BY grp"

let wv_def =
  "SELECT grp, k, amount, SUM(amount) OVER (PARTITION BY grp) AS s FROM fact"

(* ---- Bit-identity ----

   Bag equality already runs inside the engine (Verify is on); here we
   hold derived maintenance to the stricter standard the deriver
   promises: float cells carry the same bits as a from-scratch
   evaluation of the definition, not merely nearby values. *)

let value_same_bits a b =
  match (a, b) with
  | Value.Float x, Value.Float y ->
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | _ -> Value.equal a b

let row_same_bits a b =
  Row.arity a = Row.arity b
  && List.for_all
       (fun i -> value_same_bits (Row.get a i) (Row.get b i))
       (List.init (Row.arity a) Fun.id)

let bit_identical a b =
  let rows r = Array.to_list (Relation.rows (Relation.sorted_by_all r)) in
  let ra = rows a and rb = rows b in
  List.length ra = List.length rb && List.for_all2 row_same_bits ra rb

let check_bit_identical what maintained reference =
  if not (bit_identical maintained reference) then
    Alcotest.failf "%s: maintained contents diverged from full refresh:@.%s@.vs@.%s"
      what
      (Relation.render (Relation.sorted_by_all maintained))
      (Relation.render (Relation.sorted_by_all reference))

let check_view db name def =
  check_bit_identical name
    (Db.query db (Printf.sprintf "SELECT * FROM %s" name))
    (Db.query db def)

(* ---- Cert-iff-derive matrix ----

   One row per delta rule and per rejection reason: the certificate walk
   and the deriver must agree on every shape, and a failed certificate
   must carry the advertised RF30x diagnostic. *)

let matrix =
  [
    (* derivable shapes *)
    ("SELECT k, amount FROM fact WHERE amount > 0", true, None);
    (jv_def, true, None);
    (gv_def, true, None);
    (wv_def, true, None);
    ("SELECT k FROM fact UNION ALL SELECT k FROM dim", true, None);
    ( "SELECT grp, SUM(amount) AS total FROM fact WHERE k < 10 GROUP BY grp \
       HAVING COUNT(*) > 0",
      true,
      None );
    (* RF301: operators without a delta rule *)
    ("SELECT DISTINCT grp FROM fact", false, Some "RF301");
    ("SELECT k FROM fact ORDER BY k", false, Some "RF301");
    ("SELECT k FROM fact LIMIT 3", false, Some "RF301");
    ("SELECT k FROM fact UNION SELECT k FROM dim", false, Some "RF301");
    (* RF302: outer joins break bilinearity *)
    ( "SELECT f.k AS k FROM fact f LEFT OUTER JOIN dim d ON f.k = d.k",
      false,
      Some "RF302" );
    (* RF303: GROUP BY not localizable *)
    ("SELECT SUM(amount) AS total FROM fact", false, Some "RF303");
    ("SELECT SUM(amount) AS total FROM fact GROUP BY grp", false, Some "RF303");
    ( "SELECT d.label AS label, SUM(f.amount) AS total FROM fact f JOIN dim d \
       ON f.k = d.k GROUP BY d.label",
      false,
      Some "RF303" );
    (* RF304: window not partition-local *)
    ("SELECT k, SUM(amount) OVER (ORDER BY k) AS s FROM fact", false, Some "RF304");
    ( "SELECT grp, k, SUM(amount) OVER (PARTITION BY grp) AS s1, SUM(amount) \
       OVER (PARTITION BY k) AS s2 FROM fact",
      false,
      Some "RF304" );
    ( "SELECT f.grp AS grp, SUM(f.amount) OVER (PARTITION BY f.grp) AS s FROM \
       fact f JOIN dim d ON f.k = d.k",
      false,
      Some "RF304" );
    ( "SELECT k, SUM(amount) OVER (PARTITION BY grp) AS s FROM fact",
      false,
      Some "RF304" (* partition key projected away *) );
  ]

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_cert_iff_derive () =
  let db = fixture_db () in
  let cat = Db.binder_catalog db in
  List.iter
    (fun (sql, expect_ok, expect_code) ->
      let logical = Binder.bind_query cat (Parser.query sql) in
      let derived = Result.is_ok (Deriv.derive logical) in
      let cert = Ivmcert.certify ~view:"v" logical in
      Alcotest.(check bool)
        (Printf.sprintf "deriver verdict for %s" sql)
        expect_ok derived;
      Alcotest.(check bool)
        (Printf.sprintf "cert iff derive for %s" sql)
        derived (Ivmcert.valid cert);
      let rendered = Ivmcert.to_string cert in
      if expect_ok then begin
        Alcotest.(check bool)
          (Printf.sprintf "no diagnostics for %s" sql)
          true (cert.Ivmcert.diags = []);
        Alcotest.(check bool)
          (Printf.sprintf "rendered DERIVED for %s" sql)
          true (contains_sub ~sub:"DERIVED" rendered)
      end
      else begin
        Alcotest.(check bool)
          (Printf.sprintf "rendered REJECTED for %s" sql)
          true
          (contains_sub ~sub:"REJECTED" rendered
          && contains_sub ~sub:"FAIL" rendered);
        match expect_code with
        | None -> ()
        | Some code ->
          Alcotest.(check bool)
            (Printf.sprintf "diagnostic %s for %s" code sql)
            true
            (List.exists
               (fun d -> d.Rfview_analysis.Diagnostic.code = code)
               cert.Ivmcert.diags)
      end)
    matrix

(* The engine's install decision must track the same verdict: every
   derivable matrix view gets derived maintenance, every rejected one
   transparently keeps full refresh — and stays correct under DML
   either way.  Views the §2.3 sequence recognizer claims are skipped
   here: that machinery predates the deriver, assumes unique order keys
   (fact has duplicate k values) and is exercised in test_engine. *)
let test_engine_matches_matrix () =
  let db = fixture_db () in
  let entries =
    List.filteri
      (fun _ (sql, _, _) ->
        Rfview_engine.Matview.recognize (Parser.query sql) = None)
      matrix
  in
  List.iteri
    (fun i (sql, expect_ok, _) ->
      let name = Printf.sprintf "mv%d" i in
      ignore
        (Db.exec db (Printf.sprintf "CREATE MATERIALIZED VIEW %s AS %s" name sql));
      Alcotest.(check bool)
        (Printf.sprintf "derived install for %s" sql)
        expect_ok
        (Db.is_derived_maintained db name))
    entries;
  ignore (Db.exec db "INSERT INTO fact VALUES (2, 2, 0.9), (7, 3, 0.4)");
  ignore (Db.exec db "DELETE FROM dim WHERE k = 1");
  List.iteri
    (fun i (sql, _, _) ->
      let name = Printf.sprintf "mv%d" i in
      (* ORDER BY / LIMIT views are order- and pick-sensitive; for those
         just re-running the definition is the full check. *)
      check_bit_identical name
        (Db.query db (Printf.sprintf "SELECT * FROM %s" name))
        (Db.query db sql))
    entries

(* ---- Directed engine tests ---- *)

let test_join_view_incremental () =
  let db = fixture_db () in
  ignore (Db.exec db (Printf.sprintf "CREATE MATERIALIZED VIEW jv AS %s" jv_def));
  Alcotest.(check bool) "derived maintenance installed" true
    (Db.is_derived_maintained db "jv");
  Alcotest.(check bool) "counts as incrementally maintained" true
    (Db.is_incrementally_maintained db "jv");
  let steps =
    [
      "INSERT INTO fact VALUES (2, 0, 0.25)";
      "INSERT INTO fact VALUES (9, 0, 4.5)" (* dangling: no dim match *);
      "INSERT INTO dim VALUES (4, 'd')" (* matches the existing fact k=4 *);
      "UPDATE fact SET amount = amount + 0.1 WHERE k = 1";
      "UPDATE dim SET label = 'B' WHERE k = 2";
      "DELETE FROM fact WHERE k = 3";
      "DELETE FROM dim WHERE k = 1";
      "INSERT INTO fact VALUES (NULL, 1, 2.5)" (* NULL join key never matches *);
    ]
  in
  List.iter
    (fun sql ->
      ignore (Db.exec db sql);
      check_view db "jv" jv_def;
      Alcotest.(check bool)
        (Printf.sprintf "still derived after %s" sql)
        true
        (Db.is_derived_maintained db "jv"))
    steps

(* Both join flanks changed in one batch: the minus cross term
   [dA |x| dB] must fire exactly once, or the new fact/dim match would
   be double-counted. *)
let test_join_batch_cross_term () =
  let db = fixture_db () in
  ignore (Db.exec db (Printf.sprintf "CREATE MATERIALIZED VIEW jv AS %s" jv_def));
  Db.with_batch db (fun () ->
      ignore (Db.exec db "INSERT INTO fact VALUES (5, 2, 1.25)");
      ignore (Db.exec db "INSERT INTO dim VALUES (5, 'e')");
      ignore (Db.exec db "DELETE FROM fact WHERE k = 2");
      ignore (Db.exec db "UPDATE dim SET label = 'A' WHERE k = 1"));
  check_view db "jv" jv_def;
  let r =
    Db.query db "SELECT amount FROM jv WHERE k = 5"
  in
  Alcotest.(check int) "new match appears exactly once" 1 (Relation.cardinality r)

let test_groupby_view_incremental () =
  let db = fixture_db () in
  ignore (Db.exec db (Printf.sprintf "CREATE MATERIALIZED VIEW gv AS %s" gv_def));
  Alcotest.(check bool) "derived maintenance installed" true
    (Db.is_derived_maintained db "gv");
  let steps =
    [
      "INSERT INTO fact VALUES (6, 1, 0.1)" (* grow an existing group *);
      "INSERT INTO fact VALUES (6, 7, 0.1)" (* brand-new group *);
      "DELETE FROM fact WHERE grp = 2" (* a whole group disappears *);
      "UPDATE fact SET grp = 0 WHERE k = 2" (* row migrates between groups *);
      "UPDATE fact SET amount = amount * 2 WHERE grp = 0";
      "INSERT INTO fact VALUES (8, NULL, 0.3)" (* NULL group key *);
      "INSERT INTO fact VALUES (8, NULL, 0.4)";
      "DELETE FROM fact WHERE k = 6";
    ]
  in
  List.iter
    (fun sql ->
      ignore (Db.exec db sql);
      check_view db "gv" gv_def)
    steps;
  Db.with_batch db (fun () ->
      ignore (Db.exec db "INSERT INTO fact VALUES (1, 5, 0.7), (2, 5, 0.9)");
      ignore (Db.exec db "UPDATE fact SET grp = 5 WHERE grp = 1");
      ignore (Db.exec db "DELETE FROM fact WHERE grp = 0"));
  check_view db "gv" gv_def;
  Alcotest.(check bool) "still derived after batch" true
    (Db.is_derived_maintained db "gv")

let test_window_view_incremental () =
  let db = fixture_db () in
  ignore (Db.exec db (Printf.sprintf "CREATE MATERIALIZED VIEW wv AS %s" wv_def));
  Alcotest.(check bool) "derived maintenance installed" true
    (Db.is_derived_maintained db "wv");
  let steps =
    [
      "INSERT INTO fact VALUES (6, 1, 0.1)";
      "UPDATE fact SET amount = amount + 0.2 WHERE grp = 0";
      "DELETE FROM fact WHERE k = 2";
      "UPDATE fact SET grp = 2 WHERE k = 1" (* rows change partition *);
    ]
  in
  List.iter
    (fun sql ->
      ignore (Db.exec db sql);
      check_view db "wv" wv_def)
    steps

(* Under the self-join window mode the rewritten refresh path and the
   native partition recompute could disagree bit-wise, so derivation
   must not be installed for window views — and the view must still be
   maintained correctly by full refresh. *)
let test_window_view_self_join_mode () =
  let db = fixture_db () in
  Db.reconfigure db { (Db.config db) with Db.window_mode = `Self_join };
  ignore (Db.exec db (Printf.sprintf "CREATE MATERIALIZED VIEW wv AS %s" wv_def));
  Alcotest.(check bool) "no derived maintenance under self-join mode" false
    (Db.is_derived_maintained db "wv");
  ignore (Db.exec db "INSERT INTO fact VALUES (6, 1, 0.1)");
  check_view db "wv" wv_def

let test_rejected_views_fall_back () =
  let db = fixture_db () in
  let lv_def = "SELECT f.k AS k, d.label AS label FROM fact f LEFT OUTER JOIN dim d ON f.k = d.k" in
  let dv_def = "SELECT DISTINCT grp FROM fact" in
  ignore (Db.exec db (Printf.sprintf "CREATE MATERIALIZED VIEW lv AS %s" lv_def));
  ignore (Db.exec db (Printf.sprintf "CREATE MATERIALIZED VIEW dv AS %s" dv_def));
  Alcotest.(check bool) "outer join rejected" false (Db.is_derived_maintained db "lv");
  Alcotest.(check bool) "distinct rejected" false (Db.is_derived_maintained db "dv");
  Alcotest.(check bool) "not incrementally maintained either" false
    (Db.is_incrementally_maintained db "lv");
  ignore (Db.exec db "INSERT INTO fact VALUES (9, 7, 0.5)");
  ignore (Db.exec db "DELETE FROM dim WHERE k = 2");
  check_view db "lv" lv_def;
  check_view db "dv" dv_def

(* Dropping and re-creating a derived view must tear down and rebuild
   its state; a failed statement must roll the install back. *)
let test_derived_state_lifecycle () =
  let db = fixture_db () in
  ignore (Db.exec db (Printf.sprintf "CREATE MATERIALIZED VIEW jv AS %s" jv_def));
  Alcotest.(check bool) "installed" true (Db.is_derived_maintained db "jv");
  (match Db.derived_state db "jv" with
   | None -> Alcotest.fail "derived state missing"
   | Some st ->
     Alcotest.(check (list string)) "sources" [ "dim"; "fact" ]
       (List.sort compare (Rfview_engine.Matview.Derived.sources st)));
  ignore (Db.exec db "DROP VIEW jv");
  Alcotest.(check bool) "state dropped" false (Db.is_derived_maintained db "jv");
  ignore (Db.exec db (Printf.sprintf "CREATE MATERIALIZED VIEW jv AS %s" jv_def));
  Alcotest.(check bool) "reinstalled" true (Db.is_derived_maintained db "jv");
  check_view db "jv" jv_def

(* ---- Random DML streams (qcheck) ----

   Mirrors PR 5's batch-equivalence property: a stream of random DML
   over both base tables, executed per statement or inside [with_batch]
   chunks, must leave every derived view bit-identical to a fresh
   evaluation of its definition. *)

type ivm_op =
  | Fact_ins of int * int * int  (* k, grp, amount tenths *)
  | Fact_del of int              (* delete all rows with this k *)
  | Fact_upd_amount of int       (* grp selector *)
  | Fact_upd_grp of int * int    (* k selector, new grp *)
  | Dim_ins of int * int         (* k, label seed *)
  | Dim_del of int
  | Dim_relabel of int * int

let sql_of_op = function
  | Fact_ins (k, g, a) ->
    Printf.sprintf "INSERT INTO fact VALUES (%d, %d, %d.1)" k g a
  | Fact_del k -> Printf.sprintf "DELETE FROM fact WHERE k = %d" k
  | Fact_upd_amount g ->
    Printf.sprintf "UPDATE fact SET amount = amount + 0.1 WHERE grp = %d" g
  | Fact_upd_grp (k, g) ->
    Printf.sprintf "UPDATE fact SET grp = %d WHERE k = %d" g k
  | Dim_ins (k, s) -> Printf.sprintf "INSERT INTO dim VALUES (%d, 'l%d')" k s
  | Dim_del k -> Printf.sprintf "DELETE FROM dim WHERE k = %d" k
  | Dim_relabel (k, s) ->
    Printf.sprintf "UPDATE dim SET label = 'r%d' WHERE k = %d" s k

(* chunks of ops; a chunk of length > 1 runs inside one batch scope *)
let arb_ivm_stream =
  QCheck.make
    ~print:(fun chunks ->
      String.concat " | "
        (List.map
           (fun ops -> String.concat "; " (List.map sql_of_op ops))
           chunks))
    QCheck.Gen.(
      let op =
        frequency
          [
            ( 4,
              map
                (fun (k, (g, a)) -> Fact_ins (k, g, a))
                (pair (int_range 0 6) (pair (int_range 0 3) (int_range (-9) 9)))
            );
            (2, map (fun k -> Fact_del k) (int_range 0 6));
            (2, map (fun g -> Fact_upd_amount g) (int_range 0 3));
            ( 2,
              map
                (fun (k, g) -> Fact_upd_grp (k, g))
                (pair (int_range 0 6) (int_range 0 3)) );
            (2, map (fun (k, s) -> Dim_ins (k, s)) (pair (int_range 0 6) (int_range 0 9)));
            (1, map (fun k -> Dim_del k) (int_range 0 6));
            ( 1,
              map
                (fun (k, s) -> Dim_relabel (k, s))
                (pair (int_range 0 6) (int_range 0 9)) );
          ]
      in
      list_size (int_range 1 5) (list_size (int_range 1 4) op))

let prop_derived_dml_stream chunks =
  let db = fixture_db () in
  ignore (Db.exec db (Printf.sprintf "CREATE MATERIALIZED VIEW jv AS %s" jv_def));
  ignore (Db.exec db (Printf.sprintf "CREATE MATERIALIZED VIEW gv AS %s" gv_def));
  ignore (Db.exec db (Printf.sprintf "CREATE MATERIALIZED VIEW wv AS %s" wv_def));
  List.for_all
    (fun ops ->
      (match ops with
       | [ op ] -> ignore (Db.exec db (sql_of_op op))
       | ops ->
         Db.with_batch db (fun () ->
             List.iter (fun op -> ignore (Db.exec db (sql_of_op op))) ops));
      bit_identical (Db.query db "SELECT * FROM jv") (Db.query db jv_def)
      && bit_identical (Db.query db "SELECT * FROM gv") (Db.query db gv_def)
      && bit_identical (Db.query db "SELECT * FROM wv") (Db.query db wv_def)
      && Db.is_derived_maintained db "jv"
      && Db.is_derived_maintained db "gv"
      && Db.is_derived_maintained db "wv")
    chunks

let () =
  Alcotest.run "ivm"
    [
      ( "certificates",
        [
          Alcotest.test_case "cert iff derive" `Quick test_cert_iff_derive;
          Alcotest.test_case "engine matches matrix" `Quick test_engine_matches_matrix;
        ] );
      ( "derived maintenance",
        [
          Alcotest.test_case "join view" `Quick test_join_view_incremental;
          Alcotest.test_case "join batch cross term" `Quick test_join_batch_cross_term;
          Alcotest.test_case "group-by view" `Quick test_groupby_view_incremental;
          Alcotest.test_case "window view" `Quick test_window_view_incremental;
          Alcotest.test_case "window view under self-join mode" `Quick
            test_window_view_self_join_mode;
          Alcotest.test_case "rejected views fall back" `Quick
            test_rejected_views_fall_back;
          Alcotest.test_case "state lifecycle" `Quick test_derived_state_lifecycle;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make ~count:50 ~name:"random DML stream, batched and not"
               arb_ivm_stream prop_derived_dml_stream);
        ] );
    ]
