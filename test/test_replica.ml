(* Replication tests: record compression, WAL prefix-monotone replay,
   the checkpoint epoch protocol under back-to-back install crashes,
   feed/ship/replica round trips, stale-bounded reads, divergence
   quarantine + resync, promotion, and the replication chaos matrix.

   Like the crash suite, every test works in its own directory under the
   build sandbox; replicas live purely in memory and consume feed
   files. *)

open Rfview_relalg
module Db = Rfview_engine.Database
module Checkpoint = Rfview_engine.Checkpoint
module Compress = Rfview_engine.Compress
module Fault = Rfview_engine.Fault
module Wal = Rfview_engine.Wal
module Feed = Rfview_replica.Feed
module Ship = Rfview_replica.Ship
module Replica = Rfview_replica.Replica
module Chaos = Rfview_workload.Chaos

let with_clean_faults f =
  Fault.reset ();
  Fun.protect ~finally:Fault.reset f

(* A fresh (emptied) database directory per test. *)
let fresh_dir name =
  let dir = "rdb_" ^ name in
  if Sys.file_exists dir then
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if not (Sys.is_directory p) then Sys.remove p)
      (Sys.readdir dir);
  dir

let wal_path dir = Filename.concat dir "log.wal"

let check_same_bag what a b =
  if not (Relation.equal_bag a b) then
    Alcotest.failf "%s:@.left:@.%s@.right:@.%s" what
      (Relation.render (Relation.sorted_by_all a))
      (Relation.render (Relation.sorted_by_all b))

let check_same_state what primary replica =
  Alcotest.(check string) what (Db.fingerprint primary) (Db.fingerprint replica)

let setup_sql =
  [
    "CREATE TABLE seq (pos INT, val FLOAT)";
    "INSERT INTO seq VALUES (1, 10), (2, 20), (3, 30)";
    "CREATE MATERIALIZED VIEW v_cum AS SELECT pos, val, SUM(val) OVER (ORDER BY \
     pos ROWS UNBOUNDED PRECEDING) AS s FROM seq";
  ]

let setup db = List.iter (fun sql -> ignore (Db.exec db sql)) setup_sql

let qtest ?(count = 60) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* ---- Compression ---- *)

(* Mix of low-entropy (compressible) and arbitrary strings. *)
let arb_blob =
  let open QCheck in
  let low_entropy =
    Gen.(
      map
        (fun (n, pattern) ->
          let b = Buffer.create (n * String.length pattern) in
          for _ = 1 to n do
            Buffer.add_string b pattern
          done;
          Buffer.contents b)
        (pair (int_range 0 200) (string_size ~gen:(char_range 'a' 'd') (int_range 1 9))))
  in
  make
    ~print:(fun s -> Printf.sprintf "%d bytes: %S" (String.length s) s)
    Gen.(oneof [ low_entropy; string_size (int_range 0 500) ])

let prop_compress_roundtrip s =
  let z = Compress.compress s in
  String.equal (Compress.decompress z ~expected:(String.length s)) s

let prop_pack_roundtrip s =
  let buf = Buffer.create 64 in
  Compress.pack buf s;
  let r = Wal.Codec.reader (Buffer.contents buf) in
  let back =
    Compress.unpack
      ~get_int:(fun () -> Wal.Codec.get_int r)
      ~get_char:(fun () -> Wal.Codec.get_char r)
      ~get_bytes:(Wal.Codec.get_raw r)
  in
  String.equal back s && Wal.Codec.at_end r

let test_compress_shrinks_batches () =
  (* a batch of many near-identical rows must compress *)
  let rows =
    Array.init 200 (fun i -> [| Value.Int (i mod 7); Value.Float 42.0 |])
  in
  let records =
    List.init 8 (fun _ -> Wal.Insert { table = "seq"; rows })
  in
  let batch = Wal.Batch records in
  let payload = Wal.payload_of_record batch in
  let plain =
    List.fold_left (fun n r -> n + String.length (Wal.payload_of_record r)) 0 records
  in
  Alcotest.(check bool)
    (Printf.sprintf "batch payload %d < member payloads %d" (String.length payload) plain)
    true
    (String.length payload < plain / 2);
  (* and decode back to the identical record *)
  Alcotest.(check bool) "roundtrip" true (Wal.record_of_payload payload = batch)

let test_small_batch_stays_raw () =
  let batch = Wal.Batch [ Wal.Statement "REFRESH MATERIALIZED VIEW v_cum" ] in
  Alcotest.(check bool) "roundtrip" true
    (Wal.record_of_payload (Wal.payload_of_record batch) = batch)

(* ---- WAL detailed scan (the wal-info backend) ---- *)

let test_scan_detail_flags_damage () =
  let dir = fresh_dir "scan_detail" in
  let db = Db.open_durable dir in
  setup db;
  ignore (Db.exec db "INSERT INTO seq VALUES (4, 40)");
  Db.close db;
  let path = wal_path dir in
  let before = Wal.scan_detail path in
  Alcotest.(check bool) "all CRCs ok" true
    (List.for_all (fun (e : Wal.entry) -> e.Wal.e_crc_ok) before.Wal.d_entries);
  Alcotest.(check bool) "all decoded" true
    (List.for_all (fun (e : Wal.entry) -> e.Wal.e_record <> None) before.Wal.d_entries);
  Alcotest.(check (option int)) "no torn tail" None before.Wal.d_torn;
  (* flip one payload byte of the third record *)
  let victim = List.nth before.Wal.d_entries 2 in
  let at = victim.Wal.e_offset + 8 + ((victim.Wal.e_bytes - 8) / 2) in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let b = Bytes.create 1 in
  ignore (Unix.lseek fd at Unix.SEEK_SET);
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
  ignore (Unix.lseek fd at Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  let after = Wal.scan_detail path in
  Alcotest.(check int) "same entry count"
    (List.length before.Wal.d_entries)
    (List.length after.Wal.d_entries);
  List.iteri
    (fun i (e : Wal.entry) ->
      Alcotest.(check bool)
        (Printf.sprintf "entry %d crc" i)
        (i <> 2) e.Wal.e_crc_ok)
    after.Wal.d_entries;
  (* a garbage short tail is reported by offset, not raised *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "\x42\x42\x42";
  close_out oc;
  let torn = Wal.scan_detail path in
  Alcotest.(check (option int)) "torn offset" (Some after.Wal.d_size) torn.Wal.d_torn

(* ---- Prefix-monotone replay (qcheck) ----

   Run a stream of single statements and group-committed batches on a
   durable directory, recording the state fingerprint at every record
   count.  Then: truncating the WAL to ANY byte length and replaying
   the surviving records must land exactly on the state at that record
   count — never between two commits, never anything else. *)

let prefix_fixture =
  lazy
    (let dir = fresh_dir "prefix_src" in
     let db = Db.open_durable dir in
     let history = Hashtbl.create 32 in
     let remember () = Hashtbl.replace history (Db.lsn db) (Db.fingerprint db) in
     remember ();
     List.iter
       (fun sql ->
         ignore (Db.exec db sql);
         remember ())
       setup_sql;
     let ops =
       [
         `One "INSERT INTO seq VALUES (4, 40)";
         `One "UPDATE seq SET val = 21 WHERE pos = 2";
         `Batch [ "INSERT INTO seq VALUES (5, 50)"; "DELETE FROM seq WHERE pos = 1";
                  "INSERT INTO seq VALUES (6, 60)" ];
         `One "INSERT INTO seq VALUES (7, NULL)";
         `Batch [ "UPDATE seq SET val = 0 WHERE pos = 5"; "INSERT INTO seq VALUES (8, 80)" ];
         `One "REFRESH MATERIALIZED VIEW v_cum";
         `One "DELETE FROM seq WHERE pos = 4";
       ]
     in
     List.iter
       (fun op ->
         (match op with
          | `One sql -> ignore (Db.exec db sql)
          | `Batch sqls ->
            Db.with_batch db (fun () ->
                List.iter (fun sql -> ignore (Db.exec db sql)) sqls));
         remember ())
       ops;
     Db.close db;
     let data =
       let ic = open_in_bin (wal_path dir) in
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () -> really_input_string ic (in_channel_length ic))
     in
     (data, history))

let prop_prefix_monotone cut =
  let data, history = Lazy.force prefix_fixture in
  let cut = cut mod (String.length data + 1) in
  let dir = fresh_dir "prefix_cut" in
  let path = wal_path dir in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out_bin path in
  output_string oc (String.sub data 0 cut);
  close_out oc;
  match Wal.scan path with
  | exception Wal.Wal_error _ ->
    (* the Begin record itself was cut: recovery would install a fresh
       log — the empty state, which is not in this fixture's history.
       The Begin frame spans 8 header bytes plus the length its own
       length field declares. *)
    let begin_frame =
      8 + Int32.to_int (String.get_int32_le data 0)
    in
    cut < begin_frame
  | scan ->
    let db = Db.create () in
    List.iter (Db.apply_record db) scan.Wal.records;
    let k = List.length scan.Wal.records in
    (match Hashtbl.find_opt history k with
     | None -> QCheck.Test.fail_reportf "no commit boundary at %d records" k
     | Some fp ->
       String.equal (Db.fingerprint db) fp
       || QCheck.Test.fail_reportf
            "replaying %d of the records (cut at byte %d) left a state that is \
             not the recorded boundary state"
            k cut)

(* ---- Checkpoint epoch protocol: back-to-back install crashes ----

   [checkpoint.install] fires between the checkpoint rename and the WAL
   reset: the directory then holds the NEW checkpoint beside the OLD
   (stale) log.  Recovery must restore the newest durable epoch and
   discard the stale log — and must keep doing so when the same crash
   hits twice in a row. *)

let test_double_install_crash () =
  with_clean_faults @@ fun () ->
  let dir = fresh_dir "install_crash" in
  let db = ref (Db.open_durable dir) in
  setup !db;
  ignore (Db.exec !db "INSERT INTO seq VALUES (4, 40)");
  let expect_1 = Db.query !db "SELECT pos, val FROM seq" in
  Fault.arm "checkpoint.install" Fault.Always;
  (match Db.checkpoint !db with
   | () -> Alcotest.fail "checkpoint survived an armed install site"
   | exception Fault.Injected _ -> ());
  (* crash #1: new checkpoint (epoch 1) + stale epoch-0 log on disk *)
  Db.close !db;
  Fault.disarm "checkpoint.install";
  let db1, (r1 : Db.recovery_report) = Db.recover dir in
  db := db1;
  Alcotest.(check (option int)) "first recovery sees epoch 1" (Some 1)
    r1.Db.checkpoint_epoch;
  Alcotest.(check int) "stale log discarded: nothing replayed" 0 r1.Db.replayed;
  check_same_bag "state after crash 1" expect_1
    (Db.query !db "SELECT pos, val FROM seq");
  (* more committed work, then the same crash again *)
  ignore (Db.exec !db "INSERT INTO seq VALUES (5, 50)");
  let expect_2 = Db.query !db "SELECT pos, val FROM seq" in
  Fault.arm "checkpoint.install" Fault.Always;
  (match Db.checkpoint !db with
   | () -> Alcotest.fail "second checkpoint survived the armed site"
   | exception Fault.Injected _ -> ());
  Db.close !db;
  Fault.disarm "checkpoint.install";
  let db2, (r2 : Db.recovery_report) = Db.recover dir in
  db := db2;
  Alcotest.(check (option int)) "second recovery sees epoch 2" (Some 2)
    r2.Db.checkpoint_epoch;
  Alcotest.(check int) "stale epoch-1 log discarded" 0 r2.Db.replayed;
  check_same_bag "state after crash 2" expect_2
    (Db.query !db "SELECT pos, val FROM seq");
  (* the LSN must have carried through both checkpoint headers *)
  ignore (Db.exec !db "INSERT INTO seq VALUES (6, 60)");
  Alcotest.(check bool) "lsn monotone across epochs" true (Db.lsn !db > 0);
  Db.close !db

(* ---- Byte-triggered checkpoints (log compaction) ---- *)

let test_checkpoint_on_bytes () =
  let dir = fresh_dir "ckpt_bytes" in
  let db = Db.open_durable dir in
  setup db;
  Db.set_checkpoint_bytes db (Some 2048);
  Alcotest.(check int) "no checkpoint yet" 0 (Db.epoch db);
  for i = 1 to 200 do
    ignore (Db.exec db (Printf.sprintf "INSERT INTO seq VALUES (%d, %d)" (i + 10) i))
  done;
  Alcotest.(check bool) "byte threshold compacted the log" true (Db.epoch db > 0);
  let size = (Unix.stat (wal_path dir)).Unix.st_size in
  Alcotest.(check bool)
    (Printf.sprintf "replay suffix stays bounded (%d bytes)" size)
    true (size < 3 * 2048);
  let lsn = Db.lsn db in
  let expect = Db.query db "SELECT pos, val FROM seq" in
  Db.close db;
  let db', _ = Db.recover dir in
  Alcotest.(check int) "lsn restored across compaction" lsn (Db.lsn db');
  check_same_bag "state after compaction" expect (Db.query db' "SELECT pos, val FROM seq");
  Db.close db'

(* ---- Ship + replica round trips ---- *)

let test_ship_and_poll () =
  let dir = fresh_dir "ship_basic" in
  let db = Db.open_durable dir in
  setup db;
  let ship = Ship.create db in
  Ship.attach ship ~name:"r0" ~path:(Filename.concat dir "feed0");
  let rep = Replica.attach ~name:"r0" ~feed:(Filename.concat dir "feed0") () in
  ignore (Ship.pump ship);
  ignore (Replica.poll rep);
  check_same_state "after initial sync" db (Replica.database rep);
  Alcotest.(check int) "replica at the tip" (Db.lsn db) (Replica.applied_lsn rep);
  ignore (Db.exec db "INSERT INTO seq VALUES (4, 40)");
  Db.with_batch db (fun () ->
      ignore (Db.exec db "INSERT INTO seq VALUES (5, 50)");
      ignore (Db.exec db "UPDATE seq SET val = 11 WHERE pos = 1"));
  ignore (Ship.pump ship);
  ignore (Replica.poll rep);
  check_same_state "after incremental ship" db (Replica.database rep);
  Alcotest.(check int) "tip again" (Db.lsn db) (Replica.applied_lsn rep);
  Ship.close ship;
  Db.close db

let test_bootstrap_from_artifact () =
  let dir = fresh_dir "ship_bootstrap" in
  let db = Db.open_durable dir in
  setup db;
  ignore (Db.exec db "INSERT INTO seq VALUES (4, 40)");
  Db.checkpoint db;
  ignore (Db.exec db "INSERT INTO seq VALUES (5, 50)");
  (* the feed starts with the checkpoint artifact, then the suffix *)
  let ship = Ship.create db in
  Ship.attach ship ~name:"late" ~path:(Filename.concat dir "feed_late");
  ignore (Ship.pump ship);
  let rep = Replica.attach ~name:"late" ~feed:(Filename.concat dir "feed_late") () in
  ignore (Replica.poll rep);
  check_same_state "bootstrap + suffix" db (Replica.database rep);
  Alcotest.(check int) "tip" (Db.lsn db) (Replica.applied_lsn rep);
  (* a replica that falls behind the compaction horizon is re-seeded *)
  ignore (Db.exec db "INSERT INTO seq VALUES (6, 60)");
  Db.checkpoint db;
  ignore (Db.exec db "INSERT INTO seq VALUES (7, 70)");
  ignore (Ship.pump ship);
  ignore (Replica.poll rep);
  check_same_state "across the compaction horizon" db (Replica.database rep);
  Ship.close ship;
  Db.close db

let test_stale_bounded_reads () =
  let dir = fresh_dir "stale_reads" in
  let db = Db.open_durable dir in
  setup db;
  let feed = Filename.concat dir "feed0" in
  let ship = Ship.create db in
  Ship.attach ship ~name:"r0" ~path:feed;
  let rep = Replica.attach ~name:"r0" ~feed () in
  ignore (Ship.pump ship);
  ignore (Replica.poll rep);
  let at_sync = Replica.applied_lsn rep in
  (* primary moves on; the replica is not pumped *)
  ignore (Db.exec db "INSERT INTO seq VALUES (4, 40)");
  ignore (Db.exec db "INSERT INTO seq VALUES (5, 50)");
  let tip = Db.lsn db in
  (match Replica.read rep ~tip ~max_records:0 "SELECT pos, val FROM seq" with
   | Error (Replica.Stale { applied_lsn; tip_lsn; lag }) ->
     Alcotest.(check int) "stale applied lsn" at_sync applied_lsn;
     Alcotest.(check int) "stale tip" tip tip_lsn;
     Alcotest.(check int) "record lag" (tip - at_sync) lag.Replica.records
   | Ok _ -> Alcotest.fail "bound 0 served a lagging read"
   | Error (Replica.Unavailable m) -> Alcotest.failf "unavailable: %s" m);
  (* a loose bound serves the OLD state, tagged honestly *)
  (match Replica.read rep ~tip ~max_records:10 "SELECT pos, val FROM seq" with
   | Ok (rel, at) ->
     Alcotest.(check int) "tagged with the applied lsn" at_sync at;
     Alcotest.(check int) "historical row count" 3 (Relation.cardinality rel)
   | Error _ -> Alcotest.fail "bound 10 refused");
  (* catching up makes the tight bound pass *)
  ignore (Ship.pump ship);
  ignore (Replica.poll rep);
  (match Replica.read rep ~tip ~max_records:0 "SELECT pos, val FROM seq" with
   | Ok (rel, at) ->
     Alcotest.(check int) "at the tip" tip at;
     Alcotest.(check int) "fresh row count" 5 (Relation.cardinality rel)
   | Error _ -> Alcotest.fail "caught-up replica refused a bound-0 read");
  Ship.close ship;
  Db.close db

let test_divergence_quarantine_and_resync () =
  let dir = fresh_dir "diverge" in
  let db = Db.open_durable dir in
  setup db;
  let feed = Filename.concat dir "feed0" in
  let ship = Ship.create db in
  Ship.attach ship ~name:"r0" ~path:feed;
  let rep = Replica.attach ~name:"r0" ~feed () in
  ignore (Ship.pump ship);
  ignore (Replica.poll rep);
  (* corrupt the replica silently: a write that never came off the feed *)
  ignore (Db.exec (Replica.database rep) "INSERT INTO seq VALUES (99, 1)");
  ignore (Db.exec db "INSERT INTO seq VALUES (4, 40)");
  ignore (Ship.pump ship);
  ignore (Replica.poll rep);
  (match Replica.status rep with
   | Replica.Quarantined { reason; _ } ->
     Alcotest.(check bool)
       (Printf.sprintf "reason mentions divergence: %s" reason)
       true
       (String.length reason > 0)
   | _ -> Alcotest.fail "diverged replica did not quarantine");
  (match Replica.read rep ~tip:(Db.lsn db) "SELECT pos, val FROM seq" with
   | Error (Replica.Unavailable _) -> ()
   | _ -> Alcotest.fail "quarantined replica served a read");
  (* repair: fresh tip artifact, rebootstrap, fingerprint-clean *)
  Ship.resync ship ~name:"r0";
  ignore (Replica.poll rep);
  (match Replica.status rep with
   | Replica.Ready -> ()
   | _ -> Alcotest.fail "resync did not heal the replica");
  check_same_state "after resync" db (Replica.database rep);
  Ship.close ship;
  Db.close db

let test_promote () =
  let dir = fresh_dir "promote" in
  let db = Db.open_durable dir in
  setup db;
  let feed = Filename.concat dir "feed0" in
  let ship = Ship.create db in
  Ship.attach ship ~name:"r0" ~path:feed;
  let rep = Replica.attach ~name:"r0" ~feed () in
  ignore (Ship.pump ship);
  ignore (Replica.poll rep);
  let shipped_state = Db.query db "SELECT pos, val FROM seq" in
  let shipped_lsn = Db.lsn db in
  (* the primary commits a tail that is never pumped, then dies *)
  ignore (Db.exec db "INSERT INTO seq VALUES (4, 40)");
  Ship.close ship;
  Db.close db;
  let pdir = Filename.concat dir "promoted" in
  if Sys.file_exists pdir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat pdir f))
      (Sys.readdir pdir);
  let promoted = Replica.promote rep ~dir:pdir in
  check_same_bag "promoted state = shipped history" shipped_state
    (Db.query promoted "SELECT pos, val FROM seq");
  Alcotest.(check int) "promoted lsn continues the history" shipped_lsn
    (Db.lsn promoted);
  (* the new primary accepts writes and survives its own recovery *)
  ignore (Db.exec promoted "INSERT INTO seq VALUES (5, 50)");
  let expect = Db.query promoted "SELECT pos, val FROM seq" in
  Db.close promoted;
  let back, _ = Db.recover pdir in
  check_same_bag "promoted directory recovers" expect
    (Db.query back "SELECT pos, val FROM seq");
  Alcotest.(check bool) "lsn still ahead of the shipped history" true
    (Db.lsn back > shipped_lsn);
  Db.close back

(* Every replication fault site must inject cleanly and leave the
   pipeline retryable: a faulted pump truncates its partial entry back
   off, a faulted bootstrap leaves the replica able to retry. *)
let test_replica_fault_sites () =
  with_clean_faults @@ fun () ->
  let dir = fresh_dir "rep_sites" in
  let db = Db.open_durable dir in
  setup db;
  let feed = Filename.concat dir "feed0" in
  let ship = Ship.create db in
  (* a checkpoint first, so the feed leads with a bootstrap artifact *)
  Db.checkpoint db;
  Ship.attach ship ~name:"r0" ~path:feed;
  (* ship.fsync: the pump fails after writing; retry ships cleanly *)
  ignore (Db.exec db "INSERT INTO seq VALUES (4, 40)");
  Fault.arm "ship.fsync" (Fault.Nth 1);
  (match Ship.pump ship with
   | _ -> Alcotest.fail "pump survived an armed ship.fsync"
   | exception Fault.Injected _ -> ());
  Fault.disarm "ship.fsync";
  Alcotest.(check bool) "ship.fsync fired" true (Fault.fired "ship.fsync" > 0);
  ignore (Ship.pump ship);
  (* replica.bootstrap: the first poll dies mid-bootstrap; the retry
     must bootstrap from the same artifact *)
  Fault.arm "replica.bootstrap" (Fault.Nth 1);
  let rep = Replica.attach ~name:"r0" ~feed () in
  (match Replica.poll rep with
   | _ -> Alcotest.fail "poll survived an armed replica.bootstrap"
   | exception Fault.Injected _ -> ());
  Fault.disarm "replica.bootstrap";
  Alcotest.(check bool) "replica.bootstrap fired" true
    (Fault.fired "replica.bootstrap" > 0);
  ignore (Replica.poll rep);
  check_same_state "retry after both faults" db (Replica.database rep);
  Ship.close ship;
  Db.close db

(* ---- The replication chaos matrix ---- *)

let chaos_seeds = [ 3; 7; 11; 19; 23; 31; 42; 57; 71; 88; 101; 123 ]

let run_chaos_matrix seeds ~batch ~full =
  with_clean_faults @@ fun () ->
  let dir = fresh_dir "replica_chaos" in
  let total =
    List.fold_left
      (fun (acc : Chaos.replica_report) seed ->
        let config =
          {
            Chaos.default_replica_config with
            Chaos.rp_seed = seed;
            rp_batch = batch;
          }
        in
        let r = Chaos.run_replica ~config ~dir () in
        {
          r with
          Chaos.rp_statements = acc.Chaos.rp_statements + r.Chaos.rp_statements;
          rp_pumps = acc.Chaos.rp_pumps + r.Chaos.rp_pumps;
          rp_deliveries = acc.Chaos.rp_deliveries + r.Chaos.rp_deliveries;
          rp_reads = acc.Chaos.rp_reads + r.Chaos.rp_reads;
          rp_stale_reads = acc.Chaos.rp_stale_reads + r.Chaos.rp_stale_reads;
          rp_kills = acc.Chaos.rp_kills + r.Chaos.rp_kills;
          rp_corruptions = acc.Chaos.rp_corruptions + r.Chaos.rp_corruptions;
          rp_quarantines = acc.Chaos.rp_quarantines + r.Chaos.rp_quarantines;
          rp_resyncs = acc.Chaos.rp_resyncs + r.Chaos.rp_resyncs;
          rp_ship_faults = acc.Chaos.rp_ship_faults + r.Chaos.rp_ship_faults;
          rp_apply_faults = acc.Chaos.rp_apply_faults + r.Chaos.rp_apply_faults;
          rp_primary_crashes =
            acc.Chaos.rp_primary_crashes + r.Chaos.rp_primary_crashes;
          rp_compactions = acc.Chaos.rp_compactions + r.Chaos.rp_compactions;
        })
      {
        Chaos.rp_statements = 0;
        rp_pumps = 0;
        rp_deliveries = 0;
        rp_reads = 0;
        rp_stale_reads = 0;
        rp_kills = 0;
        rp_corruptions = 0;
        rp_quarantines = 0;
        rp_resyncs = 0;
        rp_ship_faults = 0;
        rp_apply_faults = 0;
        rp_primary_crashes = 0;
        rp_compactions = 0;
        rp_promoted_lsn = 0;
        rp_lost_tail = 0;
      }
      seeds
  in
  let positive what n = Alcotest.(check bool) (what ^ " exercised") true (n > 0) in
  positive "statements" total.Chaos.rp_statements;
  positive "pumps" total.Chaos.rp_pumps;
  positive "deliveries" total.Chaos.rp_deliveries;
  positive "verified reads" total.Chaos.rp_reads;
  if full then begin
    (* event-type coverage is only statistically certain over the large
       seed matrix; the smaller batched run just checks consistency *)
    positive "stale refusals" total.Chaos.rp_stale_reads;
    positive "replica kills" total.Chaos.rp_kills;
    positive "feed corruptions" total.Chaos.rp_corruptions;
    positive "quarantines" total.Chaos.rp_quarantines;
    positive "resyncs" total.Chaos.rp_resyncs;
    positive "primary crashes" total.Chaos.rp_primary_crashes;
    positive "compactions" total.Chaos.rp_compactions;
    positive "interrupted pumps" total.Chaos.rp_ship_faults;
    positive "interrupted polls" total.Chaos.rp_apply_faults;
    (* the fired-at-least-once bar for the replication sites the matrix
       arms (the sweep in test_fault.ml excludes them by prefix) *)
    Alcotest.(check bool) "ship.append fired" true (Fault.fired "ship.append" > 0);
    Alcotest.(check bool) "replica.apply fired" true
      (Fault.fired "replica.apply" > 0)
  end

let test_replica_chaos_matrix () = run_chaos_matrix chaos_seeds ~batch:0 ~full:true
let test_replica_chaos_batched () =
  run_chaos_matrix [ 5; 29; 63 ] ~batch:4 ~full:false

let () =
  Alcotest.run "replica"
    [
      ( "compression",
        [
          qtest ~count:200 "compress/decompress roundtrip" arb_blob
            prop_compress_roundtrip;
          qtest ~count:200 "pack/unpack roundtrip" arb_blob prop_pack_roundtrip;
          Alcotest.test_case "batches compress" `Quick test_compress_shrinks_batches;
          Alcotest.test_case "small batches stay raw" `Quick test_small_batch_stays_raw;
        ] );
      ( "wal",
        [
          Alcotest.test_case "scan_detail flags damage" `Quick
            test_scan_detail_flags_damage;
          qtest ~count:120 "prefix-monotone replay"
            QCheck.(int_range 0 100_000)
            prop_prefix_monotone;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "double install crash" `Quick test_double_install_crash;
          Alcotest.test_case "byte-triggered compaction" `Quick
            test_checkpoint_on_bytes;
        ] );
      ( "replica",
        [
          Alcotest.test_case "ship and poll" `Quick test_ship_and_poll;
          Alcotest.test_case "bootstrap from artifact" `Quick
            test_bootstrap_from_artifact;
          Alcotest.test_case "stale-bounded reads" `Quick test_stale_bounded_reads;
          Alcotest.test_case "divergence quarantine + resync" `Quick
            test_divergence_quarantine_and_resync;
          Alcotest.test_case "promote" `Quick test_promote;
          Alcotest.test_case "fault sites inject cleanly" `Quick
            test_replica_fault_sites;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "replication matrix" `Slow test_replica_chaos_matrix;
          Alcotest.test_case "batched replication stream" `Slow
            test_replica_chaos_batched;
        ] );
    ]
