(* Tests of the derivability certificates (lib/analysis/cert.ml): golden
   boundary cases where the certificate verdict must match the runtime
   Derive/MaxOA outcome exactly (delta_l = 0 identity, residue limits,
   shrinking windows, empty sequences, i_up cut-offs), the exhaustive
   cert<->runtime equivalence matrix, the Advisor integration (a rewrite
   fires only with a valid certificate), and the Binder's
   statement-position diagnostics. *)

module Core = Rfview_core
module Cert = Rfview_analysis.Cert
module Frame = Core.Frame
module Agg = Core.Agg
module Derive = Core.Derive
module Seqdata = Core.Seqdata
module P = Rfview_planner
module Db = Rfview_engine.Database
module Advisor = Rfview_engine.Advisor

let sliding l h = Frame.sliding ~l ~h

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* A complete materialized sequence for [frame] over n raw positions. *)
let mk_seq frame agg n =
  let lo, hi = Seqdata.complete_range frame ~n in
  Seqdata.make frame agg ~n ~lo
    (Array.init (hi - lo + 1) (fun i -> float_of_int ((i * 3) mod 7)))

let runtime_ok strategy view query_frame =
  match Derive.run strategy view query_frame with
  | _ -> true
  | exception _ -> false

let check_golden ~name ~view_frame ~view_agg ~n ~query_frame strategy expected =
  let view = mk_seq view_frame view_agg n in
  let cert = Cert.certify_seq view ~query_frame strategy in
  Alcotest.(check bool) (name ^ ": certificate verdict") expected (Cert.valid cert);
  Alcotest.(check bool) (name ^ ": runtime agrees") expected
    (runtime_ok strategy view query_frame);
  (* a rejected certificate names at least one failed obligation *)
  if not expected then
    Alcotest.(check bool) (name ^ ": a FAIL obligation is printed") true
      (List.exists (fun o -> not o.Cert.ob_holds) cert.Cert.obligations)

(* ---- Golden boundary cases (paper §3-§5) ---- *)

let test_golden_copy_identity () =
  (* delta_l = delta_h = 0: plain copy, and MaxOA degenerates to it *)
  check_golden ~name:"copy (1,1)->(1,1)" ~view_frame:(sliding 1 1)
    ~view_agg:Agg.Sum ~n:6 ~query_frame:(sliding 1 1) Derive.Copy true;
  check_golden ~name:"MaxOA at delta_l=0" ~view_frame:(sliding 1 1)
    ~view_agg:Agg.Sum ~n:6 ~query_frame:(sliding 1 1) Derive.Max_overlap true;
  check_golden ~name:"copy frames differ" ~view_frame:(sliding 1 1)
    ~view_agg:Agg.Sum ~n:6 ~query_frame:(sliding 2 1) Derive.Copy false

let test_golden_from_cumulative () =
  (* §3.1 difference rule: any sliding SUM from the cumulative view *)
  check_golden ~name:"cumulative -> (3,2)" ~view_frame:Frame.Cumulative
    ~view_agg:Agg.Sum ~n:8 ~query_frame:(sliding 3 2) Derive.From_cumulative true;
  check_golden ~name:"sliding view rejected" ~view_frame:(sliding 1 1)
    ~view_agg:Agg.Sum ~n:8 ~query_frame:(sliding 3 2) Derive.From_cumulative false;
  check_golden ~name:"MIN is not invertible" ~view_frame:Frame.Cumulative
    ~view_agg:Agg.Min ~n:8 ~query_frame:(sliding 3 2) Derive.From_cumulative false

let test_golden_maxoa_residues () =
  (* §5: the left residue needs delta_p = 1 + lx + hx - delta_l >= 1 *)
  check_golden ~name:"MaxOA delta_l = lx+hx (boundary, delta_p = 1)"
    ~view_frame:(sliding 1 1) ~view_agg:Agg.Sum ~n:8 ~query_frame:(sliding 3 1)
    Derive.Max_overlap true;
  (* statically rejected rewrite #1: one past the residue boundary *)
  check_golden ~name:"MaxOA delta_l = lx+hx+1 (delta_p = 0)"
    ~view_frame:(sliding 1 1) ~view_agg:Agg.Sum ~n:8 ~query_frame:(sliding 4 1)
    Derive.Max_overlap false;
  (* statically rejected rewrite #2: MaxOA never shrinks a window *)
  check_golden ~name:"MaxOA shrink (delta_l < 0)" ~view_frame:(sliding 1 1)
    ~view_agg:Agg.Sum ~n:8 ~query_frame:(sliding 0 1) Derive.Max_overlap false;
  (* the right residue mirrors the left one *)
  check_golden ~name:"MaxOA delta_h = hx+lx (boundary)" ~view_frame:(sliding 1 1)
    ~view_agg:Agg.Sum ~n:8 ~query_frame:(sliding 1 3) Derive.Max_overlap true;
  check_golden ~name:"MaxOA delta_h = hx+lx+1" ~view_frame:(sliding 1 1)
    ~view_agg:Agg.Sum ~n:8 ~query_frame:(sliding 1 4) Derive.Max_overlap false

let test_golden_minoa () =
  (* MinOA inverts SUM: growth and shrink alike, any deltas *)
  check_golden ~name:"MinOA grows" ~view_frame:(sliding 1 1) ~view_agg:Agg.Sum
    ~n:8 ~query_frame:(sliding 4 3) Derive.Min_overlap true;
  check_golden ~name:"MinOA shrinks" ~view_frame:(sliding 2 2) ~view_agg:Agg.Sum
    ~n:8 ~query_frame:(sliding 0 0) Derive.Min_overlap true;
  check_golden ~name:"MinOA needs SUM" ~view_frame:(sliding 1 1)
    ~view_agg:Agg.Max ~n:8 ~query_frame:(sliding 2 1) Derive.Min_overlap false;
  (* i_up cut-off boundary: the derivation must stay inside the stored
     range right where i_up = ceil((k + hy) / wx) tops out at the last
     stored position — exercised with the widest derivable query *)
  check_golden ~name:"MinOA i_up at the stored end" ~view_frame:(sliding 1 1)
    ~view_agg:Agg.Sum ~n:5 ~query_frame:(sliding 4 4) Derive.Min_overlap true

let test_golden_minmax_coverage () =
  (* §4.2 coverage: delta_l + delta_h <= lx + hx, both non-negative *)
  check_golden ~name:"minmax covered" ~view_frame:(sliding 2 1) ~view_agg:Agg.Min
    ~n:8 ~query_frame:(sliding 3 2) Derive.Max_overlap_minmax true;
  check_golden ~name:"minmax at the coverage boundary" ~view_frame:(sliding 2 1)
    ~view_agg:Agg.Max ~n:8 ~query_frame:(sliding 4 2) Derive.Max_overlap_minmax
    true;
  check_golden ~name:"minmax one past coverage" ~view_frame:(sliding 2 1)
    ~view_agg:Agg.Min ~n:8 ~query_frame:(sliding 4 3) Derive.Max_overlap_minmax
    false;
  check_golden ~name:"minmax rejects SUM views" ~view_frame:(sliding 2 1)
    ~view_agg:Agg.Sum ~n:8 ~query_frame:(sliding 3 2) Derive.Max_overlap_minmax
    false

let test_golden_empty_sequence () =
  (* n = 0: every strategy's verdict still matches the runtime *)
  List.iter
    (fun s ->
      check_golden
        ~name:(Derive.strategy_name s ^ " on empty view")
        ~view_frame:(sliding 1 1) ~view_agg:Agg.Sum ~n:0
        ~query_frame:(sliding 2 1) s
        (match s with Derive.Min_overlap | Derive.Max_overlap -> true | _ -> false))
    Derive.[ Copy; From_cumulative; Min_overlap; Max_overlap; Max_overlap_minmax ]

(* ---- The defining property, exhaustively ----

   valid (certify_seq view ~query_frame s)  iff  Derive.run s view
   query_frame succeeds, over every (n, view frame, aggregate, query
   frame, strategy) in a grid that crosses all residue and coverage
   boundaries. *)

let test_equivalence_matrix () =
  let frames =
    Frame.Cumulative
    :: List.concat_map
         (fun l -> List.map (fun h -> sliding l h) [ 0; 1; 2; 4 ])
         [ 0; 1; 2; 4 ]
  in
  let strategies =
    Derive.[ Copy; From_cumulative; Min_overlap; Max_overlap; Max_overlap_minmax ]
  in
  let total = ref 0 in
  List.iter
    (fun n ->
      List.iter
        (fun vf ->
          List.iter
            (fun agg ->
              let view = mk_seq vf agg n in
              List.iter
                (fun qf ->
                  List.iter
                    (fun s ->
                      incr total;
                      let cert = Cert.certify_seq view ~query_frame:qf s in
                      let ok = runtime_ok s view qf in
                      if Cert.valid cert <> ok then
                        Alcotest.failf
                          "certificate disagrees with runtime: n=%d %s view %s %s \
                           -> query %s: cert=%b run=%b\n%s"
                          n (Derive.strategy_name s) (Agg.name agg)
                          (Frame.to_string vf) (Frame.to_string qf)
                          (Cert.valid cert) ok (Cert.to_string cert))
                    strategies)
                frames)
            [ Agg.Sum; Agg.Min; Agg.Max ])
        frames)
    [ 0; 1; 5 ];
  Alcotest.(check bool) "matrix is large" true (!total > 10_000)

(* ---- Frame-level certification (no sequence at hand) ---- *)

let test_certify_without_fact () =
  (* without a Seqfact, completeness is an assumption recorded on the
     certificate, not a checked fact *)
  let c =
    Cert.certify ~view_frame:(sliding 1 1) ~view_agg:Agg.Sum
      ~query_frame:(sliding 2 1) Derive.Max_overlap
  in
  Alcotest.(check bool) "valid" true (Cert.valid c);
  Alcotest.(check bool) "completeness assumption recorded" true
    (List.exists
       (fun o -> o.Cert.ob_holds && contains_sub o.Cert.ob_detail "assumed")
       c.Cert.obligations)

let test_candidates_order_and_best () =
  let cands =
    Cert.candidates ~view_frame:Frame.Cumulative ~view_agg:Agg.Sum
      ~query_frame:(sliding 2 1) ()
  in
  Alcotest.(check int) "all five strategies reported" 5 (List.length cands);
  (match Cert.best ~view_frame:Frame.Cumulative ~view_agg:Agg.Sum
           ~query_frame:(sliding 2 1) () with
   | Some c ->
     Alcotest.(check bool) "best is the difference rule" true
       (c.Cert.strategy = Derive.From_cumulative)
   | None -> Alcotest.fail "a valid candidate exists");
  Alcotest.(check bool) "no candidate for an impossible pair" true
    (Cert.best ~view_frame:(sliding 1 1) ~view_agg:Agg.Min
       ~query_frame:(sliding 4 4) () = None)

(* ---- Advisor integration: rewrites fire only with a certificate ---- *)

let seq_db () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE t (pos INT, val FLOAT)");
  ignore
    (Db.exec db
       "INSERT INTO t VALUES (1, 3), (2, 1), (3, 4), (4, 1), (5, 5), (6, 9), \
        (7, 2), (8, 6)");
  ignore
    (Db.exec db
       "CREATE MATERIALIZED VIEW v11 AS SELECT pos, SUM(val) OVER (ORDER BY pos \
        ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS s FROM t");
  ignore
    (Db.exec db
       "CREATE MATERIALIZED VIEW vmin21 AS SELECT pos, MIN(val) OVER (ORDER BY \
        pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS m FROM t");
  db

let query sql = Rfview_sql.Parser.query sql

let test_advisor_proposals_carry_certificates () =
  let db = seq_db () in
  let props =
    Advisor.proposals db
      (query
         "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND \
          1 FOLLOWING) AS s FROM t ORDER BY pos")
  in
  Alcotest.(check bool) "a derivation is proposed" true (List.length props > 0);
  List.iter
    (fun (p, _, _) ->
      Alcotest.(check bool)
        ("proposal " ^ Derive.strategy_name p.Advisor.strategy ^ " is certified")
        true
        (Cert.valid p.Advisor.certificate))
    props

let test_advisor_rejects_uncertified () =
  let db = seq_db () in
  (* the MIN view matches the query's spec, but (4,3) exceeds the §4.2
     coverage bound lx+hx = 3 and MIN is not invertible: no proposal,
     and every candidate certificate is rejected *)
  let q =
    query
      "SELECT pos, MIN(val) OVER (ORDER BY pos ROWS BETWEEN 4 PRECEDING AND 3 \
       FOLLOWING) AS m FROM t ORDER BY pos"
  in
  Alcotest.(check int) "no proposal" 0 (List.length (Advisor.proposals db q));
  let certs = Advisor.certificates db q in
  Alcotest.(check bool) "candidates are still reported" true
    (List.length certs > 0);
  List.iter
    (fun (_view, cs) ->
      List.iter
        (fun c ->
          Alcotest.(check bool) "every candidate rejected" false (Cert.valid c))
        cs)
    certs

let test_advisor_answer_matches_native () =
  let db = seq_db () in
  let sql =
    "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 \
     FOLLOWING) AS s FROM t ORDER BY pos"
  in
  match Advisor.answer db (query sql) with
  | None -> Alcotest.fail "expected a certified derivation"
  | Some (derived, p) ->
    Alcotest.(check bool) "certificate valid" true (Cert.valid p.Advisor.certificate);
    let native = Db.query db sql in
    Alcotest.(check bool) "derived answer equals native execution" true
      (Rfview_relalg.Relation.equal_ordered derived native)

(* ---- Binder statement-position diagnostics ---- *)

let test_binder_statement_position () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE a (x INT, u INT)");
  let cat = Db.binder_catalog db in
  let q = Rfview_sql.Parser.query "SELECT nope FROM a" in
  (match P.Binder.bind_query ~stmt:3 cat q with
   | exception P.Binder.Bind_error m ->
     Alcotest.(check bool) "message carries the statement index" true
       (String.length m >= 12 && String.sub m 0 12 = "statement 3:")
   | _ -> Alcotest.fail "expected a bind error");
  (* without ~stmt the message is unprefixed (interactive callers) *)
  match P.Binder.bind_query cat q with
  | exception P.Binder.Bind_error m ->
    Alcotest.(check bool) "no index without ~stmt" false
      (String.length m >= 9 && String.sub m 0 9 = "statement")
  | _ -> Alcotest.fail "expected a bind error"

let () =
  Alcotest.run "cert"
    [
      ( "golden",
        [
          Alcotest.test_case "copy identity" `Quick test_golden_copy_identity;
          Alcotest.test_case "cumulative difference" `Quick
            test_golden_from_cumulative;
          Alcotest.test_case "MaxOA residues" `Quick test_golden_maxoa_residues;
          Alcotest.test_case "MinOA" `Quick test_golden_minoa;
          Alcotest.test_case "minmax coverage" `Quick test_golden_minmax_coverage;
          Alcotest.test_case "empty sequences" `Quick test_golden_empty_sequence;
        ] );
      ( "equivalence",
        [ Alcotest.test_case "cert iff runtime" `Slow test_equivalence_matrix ] );
      ( "frame-level",
        [
          Alcotest.test_case "assumed completeness" `Quick test_certify_without_fact;
          Alcotest.test_case "candidates and best" `Quick
            test_candidates_order_and_best;
        ] );
      ( "advisor",
        [
          Alcotest.test_case "proposals carry certificates" `Quick
            test_advisor_proposals_carry_certificates;
          Alcotest.test_case "uncertified is rejected" `Quick
            test_advisor_rejects_uncertified;
          Alcotest.test_case "derived equals native" `Quick
            test_advisor_answer_matches_native;
        ] );
      ( "binder",
        [
          Alcotest.test_case "statement position" `Quick
            test_binder_statement_position;
        ] );
    ]
