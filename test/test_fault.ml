(* Robustness tests: the fault-injection registry, statement-level
   atomicity (undo-logged rollback), view quarantine with lazy healing,
   cache degradation, script error reporting and the chaos harness.

   Alcotest runs suites sequentially, so the global fault registry is
   safe to share; every test resets it on entry and exit. *)

open Rfview_relalg
module Db = Rfview_engine.Database
module Catalog = Rfview_engine.Catalog
module Cache = Rfview_engine.Cache
module Csv = Rfview_engine.Csv
module Fault = Rfview_engine.Fault
module Chaos = Rfview_workload.Chaos

let with_clean_faults f =
  Fault.reset ();
  Fun.protect ~finally:Fault.reset f

let check_same_bag what a b =
  if not (Relation.equal_bag a b) then
    Alcotest.failf "%s:@.left:@.%s@.right:@.%s" what
      (Relation.render (Relation.sorted_by_all a))
      (Relation.render (Relation.sorted_by_all b))

(* ---- Fixtures ---- *)

(* seq(pos, val) with unique positions, carrying one incrementally
   maintained cumulative-SUM view [v]. *)
let db_with_view data =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE seq (pos INT, val FLOAT)");
  if data <> [] then
    ignore
      (Db.exec db
         (Printf.sprintf "INSERT INTO seq VALUES %s"
            (String.concat ", "
               (List.mapi (fun i v -> Printf.sprintf "(%d, %g)" (i + 1) v) data))));
  ignore
    (Db.exec db
       "CREATE MATERIALIZED VIEW v AS SELECT pos, val, SUM(val) OVER (ORDER BY \
        pos ROWS UNBOUNDED PRECEDING) AS s FROM seq");
  db

let recompute db =
  Db.run_query db (Catalog.view (Db.catalog db) "v").Catalog.definition

(* ---- Registry and policies ---- *)

let test_site = Fault.define "test.site"

let fires f = match f () with _ -> false | exception Fault.Injected _ -> true

let test_policy_always () =
  with_clean_faults (fun () ->
      Fault.hit test_site;
      Alcotest.(check int) "unarmed hit counted" 1 (Fault.hits "test.site");
      Alcotest.(check int) "unarmed never fires" 0 (Fault.fired "test.site");
      Fault.arm "test.site" Fault.Always;
      Alcotest.(check bool) "armed" true (Fault.is_armed "test.site");
      Alcotest.(check bool) "fires" true (fires (fun () -> Fault.hit test_site));
      Alcotest.(check bool) "fires again" true (fires (fun () -> Fault.hit test_site));
      Alcotest.(check int) "fired counted" 2 (Fault.fired "test.site");
      Fault.disarm "test.site";
      Alcotest.(check bool) "quiet after disarm" false
        (fires (fun () -> Fault.hit test_site)))

let test_policy_nth () =
  with_clean_faults (fun () ->
      Fault.arm "test.site" (Fault.Nth 3);
      let pattern = List.init 5 (fun _ -> fires (fun () -> Fault.hit test_site)) in
      Alcotest.(check (list bool)) "fires exactly on the 3rd hit, once"
        [ false; false; true; false; false ] pattern;
      Alcotest.(check int) "fired once" 1 (Fault.fired "test.site"))

let test_policy_probability_deterministic () =
  with_clean_faults (fun () ->
      let sample () =
        Fault.arm "test.site" (Fault.Probability { p = 0.5; seed = 123 });
        List.init 50 (fun _ -> fires (fun () -> Fault.hit test_site))
      in
      let a = sample () and b = sample () in
      Alcotest.(check (list bool)) "same seed, same pattern" a b;
      Alcotest.(check bool) "p=0.5 fires sometimes" true (List.mem true a);
      Alcotest.(check bool) "p=0.5 passes sometimes" true (List.mem false a);
      Fault.arm "test.site" (Fault.Probability { p = 0.; seed = 123 });
      Alcotest.(check bool) "p=0 never fires" false
        (List.mem true (List.init 20 (fun _ -> fires (fun () -> Fault.hit test_site)))))

let test_with_suspended () =
  with_clean_faults (fun () ->
      Fault.arm "test.site" Fault.Always;
      let before = Fault.hits "test.site" in
      Fault.with_suspended (fun () -> Fault.hit test_site);
      Alcotest.(check int) "suspended hit still counted" (before + 1)
        (Fault.hits "test.site");
      Alcotest.(check int) "suspended hit never fires" 0 (Fault.fired "test.site");
      Alcotest.(check bool) "fires once resumed" true
        (fires (fun () -> Fault.hit test_site)))

let test_arm_validation () =
  with_clean_faults (fun () ->
      let invalid f = match f () with _ -> false | exception Invalid_argument _ -> true in
      Alcotest.(check bool) "unknown site" true
        (invalid (fun () -> Fault.arm "no.such.site" Fault.Always));
      Alcotest.(check bool) "nth < 1" true
        (invalid (fun () -> Fault.arm "test.site" (Fault.Nth 0)));
      Alcotest.(check bool) "p > 1" true
        (invalid (fun () -> Fault.arm "test.site" (Fault.Probability { p = 1.5; seed = 0 }))))

let test_parse_spec () =
  let ok spec expected =
    match Fault.parse_spec spec with
    | Ok got ->
      Alcotest.(check (pair string string))
        spec
        (fst expected, Fault.describe_policy (snd expected))
        (fst got, Fault.describe_policy (snd got))
    | Error e -> Alcotest.failf "%s: unexpected error %s" spec e
  in
  let err spec =
    match Fault.parse_spec spec with
    | Ok _ -> Alcotest.failf "%s: expected an error" spec
    | Error _ -> ()
  in
  ok "database.apply_insert:always" ("database.apply_insert", Fault.Always);
  ok "x.y:nth=7" ("x.y", Fault.Nth 7);
  ok "x.y:p=0.25@99" ("x.y", Fault.Probability { p = 0.25; seed = 99 });
  ok "x.y:p=0.25" ("x.y", Fault.Probability { p = 0.25; seed = 0 });
  err "no-colon";
  err ":always";
  err "x.y:sometimes";
  err "x.y:nth=0";
  err "x.y:nth=many";
  err "x.y:p=1.5";
  err "x.y:p=0.5@x"

(* ---- Statement atomicity: rollback at every site ---- *)

(* Every (site, statement) pair that can abort a statement: under
   [`Abort] degradation an injected fault must leave the database
   fingerprint-identical, and the same statement must succeed once the
   site is disarmed. *)
let rollback_cases =
  (* [mutates]: whether a successful run changes the fingerprint
     (REFRESH of a fresh view is an idempotent no-op) *)
  [
    ("database.apply_insert", "INSERT INTO seq VALUES (10, 99)", true);
    ("database.apply_delete", "DELETE FROM seq WHERE pos = 1", true);
    ("database.apply_update", "UPDATE seq SET val = 99 WHERE pos = 2", true);
    ("database.propagate_view", "INSERT INTO seq VALUES (10, 99)", true);
    ("database.refresh_view", "REFRESH MATERIALIZED VIEW v", false);
    ("matview.init_state",
     "CREATE MATERIALIZED VIEW v2 AS SELECT pos, val, MIN(val) OVER (ORDER BY \
      pos ROWS BETWEEN 3 PRECEDING AND CURRENT ROW) AS m FROM seq", true);
    ("matview.apply_insert", "INSERT INTO seq VALUES (10, 99)", true);
    ("matview.apply_delete", "DELETE FROM seq WHERE pos = 1", true);
    ("matview.apply_update", "UPDATE seq SET val = 99 WHERE pos = 2", true);
  ]

let test_rollback_per_site () =
  with_clean_faults (fun () ->
      List.iter
        (fun (site, sql, mutates) ->
          let db = db_with_view [ 1.; 2.; 3.; 4. ] in
          Db.reconfigure db { (Db.config db) with Db.degradation = `Abort };
          let before = Chaos.fingerprint db in
          Fault.arm site Fault.Always;
          (match Db.exec db sql with
           | _ -> Alcotest.failf "%s: statement should have aborted" site
           | exception _ -> ());
          Alcotest.(check bool)
            (site ^ ": site actually fired") true
            (Fault.fired site > 0);
          Alcotest.(check string)
            (site ^ ": rollback left the db bit-identical") before
            (Chaos.fingerprint db);
          Fault.disarm site;
          ignore (Db.exec db sql);
          Alcotest.(check bool)
            (site ^ ": statement applies once disarmed") mutates
            (Chaos.fingerprint db <> before);
          (* the views must be consistent after the successful run *)
          check_same_bag (site ^ ": view consistent")
            (Db.query db "SELECT * FROM v") (recompute db))
        rollback_cases)

let test_csv_load_atomic () =
  with_clean_faults (fun () ->
      let db = db_with_view [ 1.; 2. ] in
      let before = Chaos.fingerprint db in
      Fault.arm "csv.load_row" (Fault.Nth 2);
      (match Csv.import_string db ~table:"seq" "pos,val\n5,50\n6,60\n" with
       | _ -> Alcotest.fail "import should have aborted"
       | exception Fault.Injected "csv.load_row" -> ());
      Alcotest.(check string) "no partial load" before (Chaos.fingerprint db);
      Fault.disarm "csv.load_row";
      Alcotest.(check int) "import succeeds once disarmed" 2
        (Csv.import_string db ~table:"seq" "pos,val\n5,50\n6,60\n");
      check_same_bag "view refreshed by the load"
        (Db.query db "SELECT * FROM v") (recompute db))

let test_ddl_rollback () =
  (* DDL joins the same undo scope: a CREATE whose initial view
     computation faults must not leave the name behind. *)
  with_clean_faults (fun () ->
      let db = db_with_view [ 1.; 2. ] in
      Db.reconfigure db { (Db.config db) with Db.degradation = `Abort };
      Fault.arm "matview.init_state" Fault.Always;
      (match
         Db.exec db "CREATE MATERIALIZED VIEW broken AS SELECT pos, val, SUM(val) \
                     OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS s FROM seq"
       with
       | _ -> Alcotest.fail "create should have aborted"
       | exception _ -> ());
      Alcotest.(check bool) "name not taken" true
        (Catalog.find_view (Db.catalog db) "broken" = None);
      Fault.disarm "matview.init_state";
      ignore
        (Db.exec db "CREATE MATERIALIZED VIEW broken AS SELECT pos, val, SUM(val) \
                     OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS s FROM seq");
      Alcotest.(check bool) "name reusable after rollback" true
        (Catalog.find_view (Db.catalog db) "broken" <> None))

(* ---- Quarantine and lazy healing ---- *)

let test_quarantine_and_heal () =
  with_clean_faults (fun () ->
      let db = db_with_view [ 1.; 2.; 3. ] in
      Fault.arm "matview.apply_insert" Fault.Always;
      (* default [`Quarantine]: the statement succeeds, the view goes stale *)
      ignore (Db.exec db "INSERT INTO seq VALUES (4, 40)");
      Alcotest.(check int) "base row applied" 4
        (Relation.cardinality (Db.query db "SELECT * FROM seq"));
      Alcotest.(check bool) "view quarantined" true (Db.is_stale db "v");
      Alcotest.(check (list string)) "stale_views lists it" [ "v" ] (Db.stale_views db);
      Fault.disarm "matview.apply_insert";
      (* the next read heals by full refresh *)
      let r = Db.query db "SELECT * FROM v" in
      Alcotest.(check bool) "healed by the read" false (Db.is_stale db "v");
      check_same_bag "healed contents correct" r (recompute db);
      (* once healed, incremental maintenance works again *)
      ignore (Db.exec db "INSERT INTO seq VALUES (5, 50)");
      Alcotest.(check bool) "stays fresh" false (Db.is_stale db "v");
      check_same_bag "maintained after healing"
        (Db.query db "SELECT * FROM v") (recompute db))

let test_quarantine_isolates_views () =
  (* only the faulting view is quarantined; others stay fresh *)
  with_clean_faults (fun () ->
      let db = db_with_view [ 1.; 2.; 3. ] in
      ignore
        (Db.exec db
           "CREATE MATERIALIZED VIEW w AS SELECT pos, val, MIN(val) OVER (ORDER \
            BY pos ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) AS m FROM seq");
      (* fire only on the first propagation of the statement: one view
         quarantines, the other maintains normally *)
      Fault.arm "database.propagate_view" (Fault.Nth 1);
      ignore (Db.exec db "INSERT INTO seq VALUES (4, 40)");
      Alcotest.(check int) "exactly one view stale" 1 (List.length (Db.stale_views db));
      List.iter
        (fun (view : Catalog.view) ->
          if not view.Catalog.stale then
            match view.Catalog.contents with
            | Some c ->
              check_same_bag (view.Catalog.view_name ^ " fresh and correct") c
                (Db.run_query db view.Catalog.definition)
            | None -> Alcotest.fail "materialized view without contents")
        (Catalog.all_views (Db.catalog db)))

(* ---- Cache degradation ---- *)

let cache_q frame =
  Printf.sprintf
    "SELECT pos, val, SUM(val) OVER (ORDER BY pos ROWS BETWEEN %s) AS s FROM seq"
    frame

let test_cache_derive_fault_bypasses () =
  with_clean_faults (fun () ->
      let db = db_with_view [ 3.; 1.; 4.; 1.; 5. ] in
      let cache = Cache.create db in
      let _, o1 = Cache.query cache (cache_q "3 PRECEDING AND 2 FOLLOWING") in
      (match o1 with
       | Cache.Miss_cached _ -> ()
       | o -> Alcotest.failf "expected a miss, got %s" (Cache.describe_outcome o));
      Alcotest.(check int) "one entry" 1 (List.length (Cache.entries cache));
      Fault.arm "cache.derive_answer" Fault.Always;
      let q = cache_q "2 PRECEDING AND 1 FOLLOWING" in
      let r, o = Cache.query cache q in
      Alcotest.(check bool) "degrades to a bypass" true (o = Cache.Bypass);
      Alcotest.(check bool) "site fired" true (Fault.fired "cache.derive_answer" > 0);
      check_same_bag "bypass answer still correct" r
        (Fault.with_suspended (fun () -> Db.query db q));
      Alcotest.(check (list string)) "faulting entry evicted" [] (Cache.entries cache);
      Alcotest.(check int) "counted as bypass" 1 (Cache.stats cache).Cache.bypasses)

let test_cache_admit_fault_bypasses () =
  with_clean_faults (fun () ->
      let db = db_with_view [ 1.; 2.; 3. ] in
      let cache = Cache.create db in
      Fault.arm "cache.admit" Fault.Always;
      let q = cache_q "1 PRECEDING AND 1 FOLLOWING" in
      let r, o = Cache.query cache q in
      Alcotest.(check bool) "degrades to a bypass" true (o = Cache.Bypass);
      check_same_bag "result still correct" r
        (Fault.with_suspended (fun () -> Db.query db q));
      Alcotest.(check (list string)) "nothing admitted" [] (Cache.entries cache);
      Fault.disarm "cache.admit";
      (* no residue: the same query now admits normally *)
      let _, o2 = Cache.query cache q in
      (match o2 with
       | Cache.Miss_cached _ -> ()
       | o -> Alcotest.failf "expected a miss, got %s" (Cache.describe_outcome o)))

let test_cache_fifo_eviction () =
  let db = db_with_view [ 1.; 2.; 3.; 4. ] in
  let cache = Cache.create ~capacity:2 db in
  let q l =
    Printf.sprintf
      "SELECT pos, MIN(val) OVER (ORDER BY pos ROWS BETWEEN %d PRECEDING AND \
       CURRENT ROW) AS m FROM seq" l
  in
  let admit l =
    match Cache.query cache (q l) with
    | _, Cache.Miss_cached name -> name
    | _, o -> Alcotest.failf "expected a miss, got %s" (Cache.describe_outcome o)
  in
  (* MIN views cannot serve shrinking frames, so each is a fresh miss *)
  let e1 = admit 3 and e2 = admit 2 and e3 = admit 1 in
  Alcotest.(check (list string)) "oldest evicted first, order kept" [ e2; e3 ]
    (Cache.entries cache);
  Alcotest.(check bool) "evicted entry's view dropped" true
    (Catalog.find_view (Db.catalog db) e1 = None)

(* ---- Script errors ---- *)

let test_script_error_context () =
  let db = Db.create () in
  (match
     Db.exec_script db
       "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); INSERT INTO missing \
        VALUES (2); INSERT INTO t VALUES (3)"
   with
   | _ -> Alcotest.fail "script should have failed"
   | exception Db.Script_error { index; sql; cause } ->
     Alcotest.(check int) "1-based statement index" 3 index;
     Alcotest.(check string) "failing SQL text" "INSERT INTO missing VALUES (2)" sql;
     (match cause with
      | Catalog.Catalog_error _ -> ()
      | e -> Alcotest.failf "unexpected cause %s" (Printexc.to_string e)));
  (* statements are atomic individually: everything before the failure
     persists, the failing statement left nothing behind *)
  Alcotest.(check int) "prior statements persisted" 1
    (Relation.cardinality (Db.query db "SELECT * FROM t"))

(* ---- Rollback idempotence (property) ---- *)

let prop_sites =
  [
    "database.apply_insert"; "database.apply_delete"; "database.apply_update";
    "database.propagate_view"; "database.refresh_view"; "matview.init_state";
    "matview.apply_insert"; "matview.apply_delete"; "matview.apply_update";
  ]

(* A short random DML stream; values are integers so SQL text round-trips
   exactly. *)
let gen_stream seed =
  let prng = Rfview_workload.Prng.create ~seed in
  List.init 12 (fun _ ->
      match Rfview_workload.Prng.int prng 8 with
      | 0 | 1 | 2 | 3 ->
        Printf.sprintf "INSERT INTO seq VALUES (%d, %d)"
          (Rfview_workload.Prng.int_range prng ~lo:1 ~hi:15)
          (Rfview_workload.Prng.int_range prng ~lo:(-9) ~hi:9)
      | 4 | 5 ->
        Printf.sprintf "UPDATE seq SET val = %d WHERE pos = %d"
          (Rfview_workload.Prng.int_range prng ~lo:(-9) ~hi:9)
          (Rfview_workload.Prng.int_range prng ~lo:1 ~hi:15)
      | 6 ->
        Printf.sprintf "DELETE FROM seq WHERE pos = %d"
          (Rfview_workload.Prng.int_range prng ~lo:1 ~hi:15)
      | _ -> "REFRESH MATERIALIZED VIEW v")

(* After any single injected fault, every statement either applied fully
   (db equals a fault-free twin) or not at all (db fingerprint
   unchanged). *)
let prop_rollback_idempotent (site_idx, nth, seed) =
  with_clean_faults (fun () ->
      let db = db_with_view [ 1.; 2.; 3. ] in
      let twin = db_with_view [ 1.; 2.; 3. ] in
      Db.reconfigure db { (Db.config db) with Db.degradation = `Abort };
      Fault.arm (List.nth prop_sites site_idx) (Fault.Nth nth);
      List.for_all
        (fun sql ->
          let before = Chaos.fingerprint db in
          match Db.exec db sql with
          | _ ->
            Fault.with_suspended (fun () -> ignore (Db.exec twin sql));
            let ok = Chaos.fingerprint db = Chaos.fingerprint twin in
            if not ok then
              QCheck.Test.fail_reportf "partial application of %S" sql;
            ok
          | exception _ ->
            let ok = Chaos.fingerprint db = before in
            if not ok then QCheck.Test.fail_reportf "dirty rollback of %S" sql;
            ok)
        (gen_stream seed))

let arb_fault_case =
  QCheck.make
    QCheck.Gen.(
      let* site_idx = int_range 0 (List.length prop_sites - 1) in
      let* nth = int_range 1 8 in
      let* seed = int_range 0 10_000 in
      return (site_idx, nth, seed))
    ~print:(fun (site_idx, nth, seed) ->
      Printf.sprintf "site=%s nth=%d seed=%d" (List.nth prop_sites site_idx) nth seed)

let qtest ?(count = 150) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* ---- Chaos harness ---- *)

let test_chaos_clean () =
  with_clean_faults (fun () ->
      let r = Chaos.run () in
      Alcotest.(check int) "all statements attempted" r.Chaos.statements
        Chaos.default_config.Chaos.ops;
      Alcotest.(check int) "nothing failed without injection" 0 r.Chaos.failed;
      Alcotest.(check int) "nothing quarantined without injection" 0 r.Chaos.quarantines;
      Alcotest.(check bool) "cache exercised" true (r.Chaos.cache_probes > 0);
      Alcotest.(check bool) "cache hits observed" true (r.Chaos.cache_hits > 0);
      (* the no-injection run must not fire a single site *)
      List.iter
        (fun site -> Alcotest.(check int) (site ^ " quiet") 0 (Fault.fired site))
        (Fault.sites ()))

(* Sweep every registered site across policies and stream seeds until
   each has fired at least once inside a consistent run — the tentpole
   acceptance bar: every site fired, every invariant held. *)
let test_chaos_sweep_all_sites () =
  with_clean_faults (fun () ->
      let policies =
        [ Fault.Nth 1; Fault.Nth 3; Fault.Probability { p = 0.4; seed = 7 } ]
      in
      let seeds = [ 11; 23; 47; 91 ] in
      (* durability sites (wal, checkpoint, recover, io prefixes) are
         only reachable through a durable database directory, and
         replication sites (ship, replica prefixes) only through a feed
         pipeline; test_crash.ml's crash matrix, test_replica.ml and
         test_storage.ml apply the same fired-at-least-once bar to
         them *)
      let durability_site site =
        List.exists
          (fun p -> String.length site > String.length p && String.sub site 0 (String.length p) = p)
          [ "wal."; "checkpoint."; "recover."; "ship."; "replica."; "io." ]
      in
      List.iter
        (fun site ->
          if site <> "test.site" && not (durability_site site) then begin
            List.iter
              (fun policy ->
                List.iter
                  (fun seed ->
                    if Fault.fired site = 0 then
                      ignore
                        (Chaos.run
                           ~config:{ Chaos.default_config with Chaos.seed }
                           ~inject:(site, policy) ()))
                  seeds)
              policies;
            Alcotest.(check bool) (site ^ " fired during the sweep") true
              (Fault.fired site > 0)
          end)
        (Fault.sites ()))

(* ---- Undo with nested/overlapping snapshots ----

   Restore actions are absolute snapshots, so logging the same table
   twice in one statement (e.g. a DML apply followed by a full-refresh
   fallback) must still roll back to the oldest snapshot — and a replay
   interrupted partway (a double fault during rollback) must be safely
   restartable without re-corrupting already-restored rows. *)

module Undo = Rfview_engine.Undo

let test_undo_overlapping_snapshots () =
  let state = ref [| 1; 2; 3 |] in
  let u = Undo.create () in
  let snap1 = !state in
  Undo.log u (fun () -> state := snap1);
  state := Array.append !state [| 4 |];
  let snap2 = !state in
  Undo.log u (fun () -> state := snap2) (* second snapshot, same object *);
  state := [| 0 |];
  Undo.rollback u;
  Alcotest.(check (array int)) "oldest snapshot wins" [| 1; 2; 3 |] !state;
  Alcotest.(check int) "log cleared" 0 (Undo.depth u)

let test_undo_double_fault_rollback () =
  let state = ref [| 1; 2; 3 |] in
  let u = Undo.create () in
  let snap1 = !state in
  Undo.log u (fun () -> state := snap1);
  state := [| 1; 2; 3; 4 |];
  let snap2 = !state in
  let fault = ref true in
  Undo.log u (fun () ->
      state := snap2;
      if !fault then begin
        fault := false;
        failwith "transient restore fault"
      end);
  state := [| 99 |];
  (match Undo.rollback u with
   | () -> Alcotest.fail "first rollback should have faulted"
   | exception Failure _ -> ());
  (* the interrupted log is still intact: the retry replays the absolute
     snapshots from the newest again and lands on the oldest state *)
  Undo.rollback u;
  Alcotest.(check (array int)) "retry restores the pre-statement rows"
    [| 1; 2; 3 |] !state;
  Alcotest.(check int) "log cleared after the retry" 0 (Undo.depth u)

(* Engine-level overlap: INSERT NULL makes incremental maintenance fall
   back to a full refresh inside the same statement, so the view is
   snapshotted twice (once by the maintain path, once by the refresh);
   faulting after both with [`Abort] must roll back through both
   restores to the exact pre-statement state. *)
let test_undo_overlapping_view_snapshots () =
  with_clean_faults (fun () ->
      let db = db_with_view [ 1.; 2.; 3. ] in
      Db.reconfigure db { (Db.config db) with Db.degradation = `Abort };
      let before = Chaos.fingerprint db in
      Fault.arm "matview.init_state" Fault.Always;
      (match Db.exec db "INSERT INTO seq VALUES (10, NULL)" with
       | _ -> Alcotest.fail "statement should have aborted"
       | exception Fault.Injected "matview.init_state" -> ());
      Fault.disarm "matview.init_state";
      Alcotest.(check string) "identical after overlapped rollback" before
        (Chaos.fingerprint db))

(* Quarantine every view at once: [stale_views] must list them in
   deterministic case-insensitive name order regardless of hashtable
   iteration order. *)
let test_stale_views_sorted () =
  with_clean_faults (fun () ->
      let db = Db.create () in
      ignore (Db.exec db "CREATE TABLE seq (pos INT, val FLOAT)");
      List.iter
        (fun name ->
          ignore
            (Db.exec db
               (Printf.sprintf
                  "CREATE MATERIALIZED VIEW %s AS SELECT pos, val, SUM(val) \
                   OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS s FROM seq"
                  name)))
        [ "Beta"; "alpha"; "GAMMA"; "delta" ];
      Fault.arm "database.propagate_view" Fault.Always;
      ignore (Db.exec db "INSERT INTO seq VALUES (1, 10)");
      Fault.disarm "database.propagate_view";
      Alcotest.(check (list string)) "case-insensitive name order"
        [ "alpha"; "Beta"; "delta"; "GAMMA" ] (Db.stale_views db))

(* ---- Batched delta maintenance ----

   The group-commit path must be observationally identical to per-row
   maintenance: same final state (bit-identical fingerprint), one
   propagation per dependent view per batch instead of per statement,
   and cache entries that never serve a pre-batch answer after commit. *)

let test_batch_vs_per_row () =
  with_clean_faults (fun () ->
      let stream = gen_stream 42 in
      let per_row = db_with_view [ 1.; 2.; 3. ] in
      List.iter (fun sql -> ignore (Db.exec per_row sql)) stream;
      let batched = db_with_view [ 1.; 2.; 3. ] in
      Db.with_batch batched (fun () ->
          List.iter (fun sql -> ignore (Db.exec batched sql)) stream);
      Alcotest.(check string) "batched state bit-identical to per-row"
        (Chaos.fingerprint per_row) (Chaos.fingerprint batched))

(* Random streams, random chunking: running the stream in [with_batch]
   chunks of any size must land on exactly the per-row state. *)
let prop_batch_equivalence (seed, chunk) =
  with_clean_faults (fun () ->
      let stream = Array.of_list (gen_stream seed) in
      let n = Array.length stream in
      let per_row = db_with_view [ 1.; 2.; 3. ] in
      Array.iter (fun sql -> ignore (Db.exec per_row sql)) stream;
      let batched = db_with_view [ 1.; 2.; 3. ] in
      let i = ref 0 in
      while !i < n do
        let last = min n (!i + chunk) in
        Db.with_batch batched (fun () ->
            for j = !i to last - 1 do
              ignore (Db.exec batched stream.(j))
            done);
        i := last
      done;
      let ok = Chaos.fingerprint per_row = Chaos.fingerprint batched in
      if not ok then
        QCheck.Test.fail_reportf "batched (chunk=%d) diverged from per-row" chunk;
      ok)

let arb_batch_case =
  QCheck.make
    QCheck.Gen.(
      let* seed = int_range 0 10_000 in
      let* chunk = int_range 1 12 in
      return (seed, chunk))
    ~print:(fun (seed, chunk) -> Printf.sprintf "seed=%d chunk=%d" seed chunk)

let test_batch_propagates_once_per_view () =
  with_clean_faults (fun () ->
      let db = db_with_view [ 1.; 2.; 3. ] in
      ignore
        (Db.exec db
           "CREATE MATERIALIZED VIEW v2 AS SELECT pos, val, MIN(val) OVER \
            (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS m FROM seq");
      let inserts lo =
        List.iter
          (fun i ->
            ignore (Db.exec db (Printf.sprintf "INSERT INTO seq VALUES (%d, 1)" (lo + i))))
          [ 0; 1; 2; 3 ]
      in
      let base = Fault.hits "database.propagate_view" in
      inserts 10;
      Alcotest.(check int) "per-row: one propagation per view per statement"
        (base + 8) (Fault.hits "database.propagate_view");
      let base = Fault.hits "database.propagate_view" in
      Db.with_batch db (fun () -> inserts 20);
      Alcotest.(check int) "batched: one propagation per view per batch"
        (base + 2) (Fault.hits "database.propagate_view");
      check_same_bag "view fresh after the batch" (recompute db)
        (Db.query db "SELECT * FROM v"))

(* Cache entries are materialized views maintained by the same
   propagation, so a batch commit refreshes them exactly once — and a
   post-commit hit must equal uncached execution, never the pre-batch
   answer.  A mid-batch probe must already see the buffered rows (reads
   force an early flush). *)
let test_batch_cache_freshness () =
  with_clean_faults (fun () ->
      let db = db_with_view [ 1.; 2.; 3. ] in
      let cache = Cache.create ~capacity:4 db in
      let seed_sql =
        "SELECT pos, val, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING \
         AND 2 FOLLOWING) AS s FROM seq"
      in
      (match Cache.query cache seed_sql with
       | _, Cache.Miss_cached _ -> ()
       | _, o -> Alcotest.failf "seed not admitted: %s" (Cache.describe_outcome o));
      let pre_batch, _ = Cache.query cache seed_sql in
      Db.with_batch db (fun () ->
          ignore (Db.exec db "INSERT INTO seq VALUES (4, 10), (5, 20)");
          (* mid-batch: the probe must see the buffered rows *)
          let mid, _ = Cache.query cache seed_sql in
          check_same_bag "mid-batch cache answer is fresh" mid
            (Db.run_query db (Rfview_sql.Parser.query seed_sql)));
      let post, outcome = Cache.query cache seed_sql in
      (match outcome with
       | Cache.Hit _ -> ()
       | o -> Alcotest.failf "post-commit probe missed: %s" (Cache.describe_outcome o));
      check_same_bag "post-commit hit equals uncached execution" post
        (Db.run_query db (Rfview_sql.Parser.query seed_sql));
      if Relation.equal_bag post pre_batch then
        Alcotest.fail "post-commit hit served the pre-batch answer")

let test_chaos_batched_clean () =
  with_clean_faults (fun () ->
      let r = Chaos.run ~config:{ Chaos.default_config with Chaos.batch = 4 } () in
      Alcotest.(check int) "all statements attempted" r.Chaos.statements
        Chaos.default_config.Chaos.ops;
      Alcotest.(check int) "nothing failed without injection" 0 r.Chaos.failed;
      Alcotest.(check int) "nothing quarantined without injection" 0
        r.Chaos.quarantines;
      Alcotest.(check bool) "cache exercised" true (r.Chaos.cache_probes > 0))

let () =
  Alcotest.run "fault"
    [
      ( "registry",
        [
          Alcotest.test_case "always" `Quick test_policy_always;
          Alcotest.test_case "nth" `Quick test_policy_nth;
          Alcotest.test_case "probability deterministic" `Quick
            test_policy_probability_deterministic;
          Alcotest.test_case "with_suspended" `Quick test_with_suspended;
          Alcotest.test_case "arm validation" `Quick test_arm_validation;
          Alcotest.test_case "parse_spec" `Quick test_parse_spec;
        ] );
      ( "atomicity",
        [
          Alcotest.test_case "rollback at every site" `Quick test_rollback_per_site;
          Alcotest.test_case "csv load atomic" `Quick test_csv_load_atomic;
          Alcotest.test_case "ddl rollback" `Quick test_ddl_rollback;
          Alcotest.test_case "script error context" `Quick test_script_error_context;
          qtest "rollback idempotence" arb_fault_case prop_rollback_idempotent;
        ] );
      ( "undo",
        [
          Alcotest.test_case "overlapping snapshots" `Quick
            test_undo_overlapping_snapshots;
          Alcotest.test_case "double fault during rollback" `Quick
            test_undo_double_fault_rollback;
          Alcotest.test_case "overlapping view snapshots" `Quick
            test_undo_overlapping_view_snapshots;
        ] );
      ( "quarantine",
        [
          Alcotest.test_case "quarantine and lazy heal" `Quick test_quarantine_and_heal;
          Alcotest.test_case "quarantine isolates views" `Quick
            test_quarantine_isolates_views;
          Alcotest.test_case "stale_views deterministic order" `Quick
            test_stale_views_sorted;
        ] );
      ( "cache degradation",
        [
          Alcotest.test_case "derivation fault bypasses" `Quick
            test_cache_derive_fault_bypasses;
          Alcotest.test_case "admission fault bypasses" `Quick
            test_cache_admit_fault_bypasses;
          Alcotest.test_case "fifo eviction" `Quick test_cache_fifo_eviction;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "clean run, no site fires" `Quick test_chaos_clean;
          Alcotest.test_case "sweep fires every site" `Slow test_chaos_sweep_all_sites;
          Alcotest.test_case "batched clean run" `Quick test_chaos_batched_clean;
        ] );
      ( "batched maintenance",
        [
          Alcotest.test_case "batch equals per-row" `Quick test_batch_vs_per_row;
          Alcotest.test_case "one propagation per view per batch" `Quick
            test_batch_propagates_once_per_view;
          Alcotest.test_case "cache fresh across a batch commit" `Quick
            test_batch_cache_freshness;
          qtest ~count:100 "batch/per-row equivalence" arb_batch_case
            prop_batch_equivalence;
        ] );
    ]
