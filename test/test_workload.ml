(* Tests of the workload generators: PRNG determinism and distribution
   sanity, sequence-table setup, and the credit-card star schema. *)

open Rfview_relalg
module W = Rfview_workload
module Db = Rfview_engine.Database

(* Checker-verify every bound plan and translation-validate every
   rewrite pass while the suite runs. *)
let () = Rfview_analysis.Verify.enable ()
module Core = Rfview_core

(* ---- PRNG ---- *)

let test_prng_deterministic () =
  let a = W.Prng.create ~seed:7 and b = W.Prng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (W.Prng.int a 1000) (W.Prng.int b 1000)
  done;
  let c = W.Prng.create ~seed:8 in
  let diff = ref false in
  for _ = 1 to 20 do
    if W.Prng.int a 1000 <> W.Prng.int c 1000 then diff := true
  done;
  Alcotest.(check bool) "different seeds differ" true !diff

let test_prng_ranges () =
  let p = W.Prng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = W.Prng.int_range p ~lo:(-5) ~hi:5 in
    if v < -5 || v > 5 then Alcotest.fail "int_range out of range";
    let f = W.Prng.float p in
    if f < 0. || f >= 1. then Alcotest.fail "float out of range"
  done;
  Alcotest.(check bool) "invalid bound" true
    (match W.Prng.int p 0 with exception Invalid_argument _ -> true | _ -> false)

let test_prng_uniformish () =
  (* crude balance check over 10 buckets *)
  let p = W.Prng.create ~seed:3 in
  let buckets = Array.make 10 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let b = W.Prng.int p 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      if c < n / 20 || c > n / 5 then
        Alcotest.failf "bucket count %d looks non-uniform" c)
    buckets

let test_prng_gaussian_moments () =
  let p = W.Prng.create ~seed:4 in
  let n = 20_000 in
  let sum = ref 0. and sq = ref 0. in
  for _ = 1 to n do
    let x = W.Prng.gaussian p ~mean:10. ~stddev:2. in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean close" true (Float.abs (mean -. 10.) < 0.1);
  Alcotest.(check bool) "variance close" true (Float.abs (var -. 4.) < 0.3)

let test_prng_shuffle_permutes () =
  let p = W.Prng.create ~seed:5 in
  let a = Array.init 50 Fun.id in
  W.Prng.shuffle p a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check bool) "permutation" true (sorted = Array.init 50 Fun.id);
  Alcotest.(check bool) "actually shuffled" true (a <> Array.init 50 Fun.id)

(* ---- Seqgen ---- *)

let test_seqgen_tables () =
  let db = Db.create () in
  let values = W.Seqgen.raw_values ~seed:9 100 in
  W.Seqgen.create_seq_table ~indexed:true db values;
  let r = Db.query db "SELECT COUNT(*) AS n FROM seq" in
  Alcotest.(check int) "rows" 100 (Value.to_int (Row.get (Relation.rows r).(0) 0));
  (* determinism *)
  Alcotest.(check bool) "same seed same data" true
    (W.Seqgen.raw_values ~seed:9 100 = values);
  (* matseq holds the complete range *)
  let seq = Core.Compute.sequence (Core.Frame.sliding ~l:2 ~h:1) (Core.Seqdata.raw_of_array values) in
  W.Seqgen.create_matseq_table db seq;
  let r = Db.query db "SELECT COUNT(*) AS n, MIN(pos) AS lo, MAX(pos) AS hi FROM matseq" in
  let row = (Relation.rows r).(0) in
  Alcotest.(check int) "complete rows" 103 (Value.to_int (Row.get row 0));
  Alcotest.(check int) "header start" 0 (Value.to_int (Row.get row 1));
  Alcotest.(check int) "trailer end" 102 (Value.to_int (Row.get row 2))

(* ---- Transactions ---- *)

let test_transactions_schema () =
  let db = Db.create () in
  let config = { W.Transactions.default_config with days = 10; transactions_per_day = 5 } in
  W.Transactions.load ~config db;
  let n =
    Value.to_int
      (Row.get (Relation.rows (Db.query db "SELECT COUNT(*) AS n FROM c_transactions")).(0) 0)
  in
  Alcotest.(check int) "transaction count" 50 n;
  (* referential integrity of the location foreign key *)
  let dangling =
    Db.query db
      "SELECT c_locid FROM c_transactions t LEFT OUTER JOIN l_locations l ON c_locid \
       = l_locid WHERE l_locid IS NULL"
  in
  Alcotest.(check int) "no dangling locations" 0 (Relation.cardinality dangling);
  (* dates stay in the configured window *)
  let bad =
    Db.query db
      "SELECT c_date FROM c_transactions WHERE c_date < DATE '2002-01-01' OR c_date \
       > DATE '2002-01-10'"
  in
  Alcotest.(check int) "dates in window" 0 (Relation.cardinality bad);
  (* amounts positive *)
  let neg = Db.query db "SELECT c_transaction FROM c_transactions WHERE c_transaction < 1" in
  Alcotest.(check int) "amounts >= 1" 0 (Relation.cardinality neg)

let test_intro_query_runs () =
  let db = Db.create () in
  W.Transactions.load
    ~config:{ W.Transactions.default_config with days = 20; transactions_per_day = 10 }
    db;
  let r = Db.query db (W.Transactions.intro_query ~custid:3 ()) in
  Alcotest.(check int) "six columns" 6 (Schema.arity (Relation.schema r));
  (* the cumulative total is non-decreasing in date order *)
  let prev = ref Float.neg_infinity in
  Relation.iter
    (fun row ->
      let v = Value.to_float (Row.get row 2) in
      if v < !prev then Alcotest.fail "cumulative total decreased";
      prev := v)
    r

let () =
  Alcotest.run "workload"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
          Alcotest.test_case "uniform-ish" `Quick test_prng_uniformish;
          Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
        ] );
      ("seqgen", [ Alcotest.test_case "tables" `Quick test_seqgen_tables ]);
      ( "transactions",
        [
          Alcotest.test_case "schema + integrity" `Quick test_transactions_schema;
          Alcotest.test_case "intro query" `Quick test_intro_query_runs;
        ] );
    ]
