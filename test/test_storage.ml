(* Storage-fault tests: the Io seam and its simulated disk, disk-full
   degraded mode, typed truncate errors, the artifact scrubber,
   cross-source repair, and the storage-fault chaos matrix.

   The simulated disk (Io.Sim) and the fault registry are global state:
   every test resets both on entry and exit. *)

module Db = Rfview_engine.Database
module Fault = Rfview_engine.Fault
module Io = Rfview_engine.Io
module Wal = Rfview_engine.Wal
module Scrub = Rfview_engine.Scrub
module Feed = Rfview_replica.Feed
module Ship = Rfview_replica.Ship
module Repair = Rfview_replica.Repair
module Chaos = Rfview_workload.Chaos

let with_sim f =
  Fault.reset ();
  Io.Sim.reset ();
  Fun.protect
    ~finally:(fun () ->
      Fault.reset ();
      Io.Sim.reset ())
    f

(* A fresh (created, emptied) directory per test. *)
let fresh_dir name =
  let dir = "tsto_" ^ name in
  if Sys.file_exists dir then
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if not (Sys.is_directory p) then Sys.remove p)
      (Sys.readdir dir)
  else Sys.mkdir dir 0o755;
  dir

let wal_path dir = Filename.concat dir "log.wal"

let setup_sql =
  [
    "CREATE TABLE seq (pos INT, val FLOAT)";
    "INSERT INTO seq VALUES (1, 10), (2, 20), (3, 30)";
    "CREATE MATERIALIZED VIEW v AS SELECT pos, val, SUM(val) OVER (ORDER BY \
     pos ROWS UNBOUNDED PRECEDING) AS s FROM seq";
  ]

let build dir =
  let db = Db.open_durable dir in
  List.iter (fun sql -> ignore (Db.exec db sql)) setup_sql;
  db

(* An in-memory twin that executed exactly the committed statements:
   the oracle every durable state is compared against. *)
let twin_with extra =
  let db = Db.create () in
  List.iter (fun sql -> ignore (Db.exec db sql)) (setup_sql @ extra);
  db

let check_fp what expected actual =
  if Chaos.fingerprint expected <> Chaos.fingerprint actual then
    Alcotest.failf "%s: state does not match the oracle twin" what

(* Retry a write until the degraded session resumes (the space probe
   runs every [probe_backoff]-th rejection, capped at 64, so a bounded
   number of retries always reaches it once the disk is healthy). *)
let resume_with db sql =
  let lifted = ref false in
  for _ = 1 to 200 do
    if not !lifted then
      match Db.exec db sql with
      | _ -> lifted := true
      | exception Db.Degraded_error _ -> ()
  done;
  Alcotest.(check bool) "degraded mode lifted" true !lifted

(* ---- The simulated disk ---- *)

let test_sim_budget_torn () =
  with_sim (fun () ->
      let dir = fresh_dir "sim_budget" in
      let path = Filename.concat dir "f" in
      Io.Sim.set_budget (Some 5);
      let f = Io.openf path ~mode:Io.Create_trunc in
      (match Io.write f "0123456789" with
       | () -> Alcotest.fail "write succeeded past the budget"
       | exception Io.Io_error { kind = Io.Enospc; op = "write"; _ } -> ());
      Io.close f;
      (* the affordable prefix landed: exactly a torn write on a full
         disk *)
      Alcotest.(check int) "torn prefix landed" 5 (Io.file_size path);
      Io.Sim.set_budget None;
      let f = Io.openf path ~mode:Io.Append in
      Io.write f "abc";
      Io.fsync f;
      Io.close f;
      Alcotest.(check int) "writes resume once the budget clears" 8
        (Io.file_size path))

let test_sim_crash_durable_length () =
  with_sim (fun () ->
      let dir = fresh_dir "sim_crash" in
      let path = Filename.concat dir "f" in
      let f = Io.openf path ~mode:Io.Create_trunc in
      Io.write f "durable";
      Io.fsync f;
      Io.write f "-lost";
      Io.close f;
      Alcotest.(check int) "all bytes on disk before the cut" 12
        (Io.file_size path);
      Io.Sim.crash ();
      Alcotest.(check int) "unsynced bytes lost at the power cut" 7
        (Io.file_size path);
      Alcotest.(check string) "the durable prefix survives" "durable"
        (Io.read_file path))

let test_sim_bit_flip () =
  with_sim (fun () ->
      let dir = fresh_dir "sim_flip" in
      let path = Filename.concat dir "f" in
      let payload = String.make 64 'x' in
      Io.Sim.set_flip ~p:1.0 ~seed:42;
      let f = Io.openf path ~mode:Io.Create_trunc in
      Io.write f payload;
      Io.close f;
      Io.Sim.clear_flip ();
      Alcotest.(check bool) "a flip was recorded" true (Io.Sim.flips () >= 1);
      Alcotest.(check bool) "the stored bytes differ silently" true
        (Io.read_file path <> payload))

(* The io.* sites speak the same SITE:POLICY grammar as every other
   fault site, and the injected error's kind is chosen by the Sim. *)
let test_io_site_via_grammar () =
  with_sim (fun () ->
      (match Fault.parse_spec "io.write:nth=1" with
       | Ok (site, policy) -> Fault.arm site policy
       | Error m -> Alcotest.fail m);
      Io.Sim.set_error_kind Io.Enospc;
      let dir = fresh_dir "sim_grammar" in
      let path = Filename.concat dir "f" in
      let f = Io.openf path ~mode:Io.Create_trunc in
      (match Io.write f "x" with
       | () -> Alcotest.fail "armed io.write did not fire"
       | exception Io.Io_error { kind = Io.Enospc; _ } -> ());
      (* nth=1 fires once: the retry goes through *)
      Io.write f "y";
      Io.close f;
      Alcotest.(check int) "retry landed" 1 (Io.file_size path))

(* ---- Disk-full degraded mode ---- *)

let test_enospc_degrade_resume () =
  with_sim (fun () ->
      let dir = fresh_dir "enospc" in
      let db = build dir in
      Io.Sim.set_budget (Some 4);
      (match Db.exec db "INSERT INTO seq VALUES (4, 40)" with
       | _ -> Alcotest.fail "statement committed on a full disk"
       | exception Db.Degraded_error _ -> ());
      (match Db.health db with
       | Db.Degraded _ -> ()
       | Db.Healthy -> Alcotest.fail "ENOSPC did not enter degraded mode");
      (* reads keep serving the pre-failure state *)
      check_fp "reads while degraded" (twin_with []) db;
      (* more writes are rejected while the probe keeps failing *)
      for _ = 1 to 3 do
        match Db.exec db "INSERT INTO seq VALUES (4, 40)" with
        | _ -> Alcotest.fail "degraded session accepted a write"
        | exception Db.Degraded_error _ -> ()
      done;
      (match Db.health db with
       | Db.Degraded { rejected_writes; _ } ->
         Alcotest.(check bool) "rejections counted" true (rejected_writes >= 3)
       | Db.Healthy -> Alcotest.fail "left degraded mode with the disk full");
      (* free the disk: the probe lifts the mode and the retry commits *)
      Io.Sim.set_budget None;
      resume_with db "INSERT INTO seq VALUES (4, 40)";
      (match Db.health db with
       | Db.Healthy -> ()
       | Db.Degraded { reason; _ } -> Alcotest.failf "still degraded: %s" reason);
      let expected = twin_with [ "INSERT INTO seq VALUES (4, 40)" ] in
      check_fp "after resume" expected db;
      Db.close db;
      let db', _ = Db.recover dir in
      check_fp "after recovery" expected db';
      Db.close db')

(* The checkpoint-install hazard: the checkpoint artifact is already
   durable when the fresh-WAL install fails.  Appending to the
   old-epoch log would silently lose records at recovery, so the lift
   must finish the install first. *)
let test_checkpoint_install_degrades () =
  with_sim (fun () ->
      let dir = fresh_dir "pending_fresh" in
      let db = build dir in
      (* rename #1 installs the checkpoint artifact, rename #2 installs
         the fresh log: fail the second *)
      Io.Sim.set_error_kind Io.Eio;
      Fault.arm "io.rename" (Fault.Nth 2);
      (match Db.checkpoint db with
       | () -> Alcotest.fail "checkpoint succeeded with io.rename armed"
       | exception Db.Degraded_error _ -> ());
      Fault.disarm "io.rename";
      (match Db.health db with
       | Db.Degraded _ -> ()
       | Db.Healthy -> Alcotest.fail "failed install did not enter degraded mode");
      resume_with db "INSERT INTO seq VALUES (5, 50)";
      Alcotest.(check int) "the fresh epoch was installed by the lift" 1
        (Db.epoch db);
      Db.close db;
      let db', r = Db.recover dir in
      Alcotest.(check (option int)) "recovery starts from the new checkpoint"
        (Some 1) r.Db.checkpoint_epoch;
      check_fp "post-recovery"
        (twin_with [ "INSERT INTO seq VALUES (5, 50)" ])
        db';
      Db.close db')

(* The rollback hazard: the commit fails AND the truncate-back fails,
   leaving the rejected record on the log.  A later synced commit would
   make it durable — so the session must degrade and the lift must chop
   it off before accepting writes again. *)
let test_failed_rollback_degrades () =
  with_sim (fun () ->
      let dir = fresh_dir "rollback_fail" in
      let db = build dir in
      Io.Sim.set_error_kind Io.Eio;
      Fault.arm "io.fsync" (Fault.Nth 1);
      Fault.arm "io.truncate" Fault.Always;
      (match Db.exec db "INSERT INTO seq VALUES (9, 90)" with
       | _ -> Alcotest.fail "statement committed under a failing fsync"
       | exception _ -> ());
      Fault.disarm "io.fsync";
      Fault.disarm "io.truncate";
      (match Db.health db with
       | Db.Degraded _ -> ()
       | Db.Healthy -> Alcotest.fail "torn rollback did not enter degraded mode");
      resume_with db "INSERT INTO seq VALUES (4, 40)";
      Db.close db;
      (* the rejected (9, 90) must NOT replay: the lift chopped it *)
      let db', _ = Db.recover dir in
      check_fp "rejected record stayed off the log"
        (twin_with [ "INSERT INTO seq VALUES (4, 40)" ])
        db';
      Db.close db')

(* ---- Typed truncate errors ---- *)

let test_truncate_back_typed_error () =
  with_sim (fun () ->
      let dir = fresh_dir "trunc_err" in
      let path = wal_path dir in
      let w = Wal.create path ~epoch:0 in
      let pos = Wal.position w in
      Wal.append w (Wal.Statement "CREATE TABLE t (x INT)");
      Fault.arm "io.truncate" Fault.Always;
      (match Wal.truncate_back w pos with
       | () -> Alcotest.fail "truncate_back succeeded with io.truncate armed"
       | exception Wal.Truncate_error { path = p; target; detail } ->
         Alcotest.(check string) "path carried" path p;
         Alcotest.(check int) "target offset carried" pos target;
         Alcotest.(check bool) "detail present" true (String.length detail > 0));
      Fault.disarm "io.truncate";
      Wal.truncate_back w pos;
      Alcotest.(check int) "retry chopped the record" pos (Wal.position w);
      Wal.close w)

(* ---- The io.* sweep ----

   Every seam site, under both error kinds: the faulting operation
   either rolls back cleanly or leaves the session in typed degraded
   mode (never half-applied), and after recovery the directory
   reproduces exactly the committed statements. *)

let test_io_site_sweep () =
  let cases =
    [
      ("io.write", Fault.Nth 1, `Statement);
      ("io.fsync", Fault.Nth 1, `Statement);
      ("io.rename", Fault.Nth 1, `Checkpoint);
      ("io.rename", Fault.Nth 2, `Checkpoint) (* the fresh-WAL install *);
      ("io.truncate", Fault.Always, `Rollback) (* fires during rollback *);
    ]
  in
  List.iteri
    (fun i (site, policy, driver) ->
      List.iter
        (fun kind ->
          with_sim (fun () ->
              let what =
                Printf.sprintf "%s/%s" site
                  (match kind with Io.Enospc -> "enospc" | Io.Eio -> "eio")
              in
              let dir = fresh_dir (Printf.sprintf "sweep%d" i) in
              let db = build dir in
              Io.Sim.set_error_kind kind;
              (match driver with
               | `Rollback -> Fault.arm "io.write" (Fault.Nth 1)
               | _ -> ());
              Fault.arm site policy;
              let stmt = "INSERT INTO seq VALUES (6, 60)" in
              let applied =
                match driver with
                | `Statement | `Rollback ->
                  (match Db.exec db stmt with
                   | _ -> true
                   | exception _ -> false)
                | `Checkpoint ->
                  (match Db.checkpoint db with () -> () | exception _ -> ());
                  false
              in
              Fault.disarm site;
              (match driver with
               | `Rollback -> Fault.disarm "io.write"
               | _ -> ());
              (* live state: fully applied or fully rolled back *)
              check_fp
                (what ^ ": live state")
                (twin_with (if applied then [ stmt ] else []))
                db;
              (* if the fault dropped the session to degraded mode,
                 drive the resume so recovery sees a consistent log *)
              let retried =
                match Db.health db with
                | Db.Healthy -> false
                | Db.Degraded _ ->
                  resume_with db stmt;
                  true
              in
              Db.close db;
              let db', _ = Db.recover dir in
              check_fp
                (what ^ ": post-recovery")
                (twin_with (if applied || retried then [ stmt ] else []))
                db';
              Db.close db'))
        [ Io.Enospc; Io.Eio ])
    cases

(* ---- Sweeping stale temp files ---- *)

let test_tmp_sweep_at_open () =
  with_sim (fun () ->
      let dir = fresh_dir "sweep_tmp" in
      let db = build dir in
      Db.close db;
      let stray = Filename.concat dir "checkpoint.tmp" in
      let oc = open_out_bin stray in
      output_string oc "half-written junk";
      close_out oc;
      let r = Repair.scrub dir in
      Alcotest.(check bool) "scrub reports the stray tmp" true
        (List.exists
           (fun (d : Scrub.damage) -> d.Scrub.d_kind = Scrub.Stray_tmp)
           r.Scrub.damage);
      let db', rep = Db.recover dir in
      Alcotest.(check (list string)) "swept (and reported) at open" [ stray ]
        rep.Db.swept;
      Alcotest.(check bool) "stray file removed" false (Sys.file_exists stray);
      Db.close db')

let test_feed_tmp_sweep () =
  with_sim (fun () ->
      let fdir = fresh_dir "sweep_feed" in
      let feed = Filename.concat fdir "f.feed" in
      let db = build (fresh_dir "sweep_feed_db") in
      let sh = Ship.create db in
      Ship.attach sh ~name:"f" ~path:feed;
      Ship.close sh;
      Db.close db;
      let ftmp = feed ^ ".tmp" in
      let oc = open_out_bin ftmp in
      output_string oc "x";
      close_out oc;
      let w = Feed.open_append feed in
      Feed.close w;
      Alcotest.(check bool) "feed open sweeps its .tmp sibling" false
        (Sys.file_exists ftmp))

(* ---- Cross-source WAL repair (the acceptance criterion) ---- *)

let test_wal_rebuild_from_feed () =
  with_sim (fun () ->
      let dir = fresh_dir "rebuild" in
      let fdir = fresh_dir "rebuild_feed" in
      let feed = Filename.concat fdir "f.feed" in
      let db = build dir in
      let sh = Ship.create db in
      Ship.attach sh ~name:"f" ~path:feed;
      Db.checkpoint db;
      ignore (Db.exec db "INSERT INTO seq VALUES (7, 70)");
      ignore (Db.exec db "UPDATE seq SET val = 11 WHERE pos = 1");
      ignore (Ship.pump sh);
      Ship.close sh;
      Db.close db;
      let pristine = Io.read_file (wal_path dir) in
      (* a suffix of the log vanishes mid-frame, "deleted by hand" *)
      let f = Io.openf (wal_path dir) ~mode:Io.Write in
      Io.ftruncate f (String.length pristine - 3);
      Io.close f;
      let before = Repair.scrub ~feeds:[ feed ] dir in
      Alcotest.(check bool) "scrub sees the chop" false (Scrub.clean before);
      let outcome = Repair.repair ~feeds:[ feed ] dir in
      Alcotest.(check bool) "after-scrub clean" true
        (Scrub.clean outcome.Repair.o_after);
      Alcotest.(check bool) "rebuilt from the feed, fingerprint-verified" true
        (List.exists
           (function
             | Repair.Rebuilt_wal { verified; _ } -> verified
             | _ -> false)
           outcome.Repair.o_actions);
      Alcotest.(check string) "bit-identical rebuild" pristine
        (Io.read_file (wal_path dir));
      (* deleting the whole file rebuilds too *)
      Io.remove (wal_path dir);
      let outcome2 = Repair.repair ~feeds:[ feed ] dir in
      Alcotest.(check bool) "after-scrub clean (deleted log)" true
        (Scrub.clean outcome2.Repair.o_after);
      Alcotest.(check string) "bit-identical after whole-file deletion"
        pristine
        (Io.read_file (wal_path dir));
      let db', _ = Db.recover dir in
      check_fp "recovered state"
        (twin_with
           [
             "INSERT INTO seq VALUES (7, 70)";
             "UPDATE seq SET val = 11 WHERE pos = 1";
           ])
        db';
      Db.close db')

(* ---- Scrub property ---- *)

(* Run a short random DML stream, checkpoint, leave a nonempty WAL
   suffix, and close: the directory must scrub clean.  Then flip one
   random byte in one artifact: the scrubber must report damage, all of
   it against exactly that artifact. *)
let random_dml_dir ~seed ~batch =
  let dir = fresh_dir "qscrub" in
  let db = Db.open_durable dir in
  List.iter (fun sql -> ignore (Db.exec db sql)) setup_sql;
  let state = ref ((seed land 0x3fffffff) + 1) in
  let next n =
    state := (!state * 48271) mod 0x7fffffff;
    !state mod n
  in
  let exec_one () =
    let pos = 1 + next 20 and v = next 100 in
    let sql =
      match next 4 with
      | 0 | 1 -> Printf.sprintf "INSERT INTO seq VALUES (%d, %d)" pos v
      | 2 -> Printf.sprintf "UPDATE seq SET val = %d WHERE pos = %d" v pos
      | _ -> Printf.sprintf "DELETE FROM seq WHERE pos = %d" pos
    in
    ignore (Db.exec db sql)
  in
  for _ = 1 to 4 do
    if batch > 1 then
      Db.with_batch db (fun () ->
          for _ = 1 to batch do
            exec_one ()
          done)
    else exec_one ()
  done;
  Db.checkpoint db;
  for _ = 1 to 3 do
    exec_one ()
  done;
  Db.close db;
  dir

let scrub_flip_property =
  QCheck.Test.make ~count:25
    ~name:"scrub: clean after checkpoint; one flip names exactly its artifact"
    QCheck.(triple small_nat small_nat bool)
    (fun (seed, off_seed, batched) ->
      with_sim (fun () ->
          let dir = random_dml_dir ~seed ~batch:(if batched then 3 else 0) in
          let r = Repair.scrub dir in
          if not (Scrub.clean r) then
            QCheck.Test.fail_reportf "dirty after a clean shutdown: %s"
              (Scrub.describe r);
          let target =
            if off_seed mod 2 = 0 then wal_path dir
            else Filename.concat dir "checkpoint"
          in
          let bytes = Io.read_file target in
          let at = ((off_seed * 7919) + seed) mod String.length bytes in
          let f = Io.openf target ~mode:Io.Write in
          Io.pwrite f ~at (String.make 1 (Char.chr (Char.code bytes.[at] lxor 0xff)));
          Io.close f;
          let r' = Repair.scrub dir in
          if Scrub.clean r' then
            QCheck.Test.fail_reportf "flip at byte %d of %s went undetected" at
              target;
          List.iter
            (fun (d : Scrub.damage) ->
              let p = Scrub.path_of_artifact d.Scrub.d_artifact in
              if p <> target then
                QCheck.Test.fail_reportf
                  "flip in %s reported against %s:@.%s" target p
                  (Scrub.describe r'))
            r'.Scrub.damage;
          true))

(* ---- The storage chaos matrix ---- *)

let test_storage_chaos_matrix () =
  with_sim (fun () ->
      let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ] in
      let add a b =
        {
          Chaos.st_statements = a.Chaos.st_statements + b.Chaos.st_statements;
          st_io_faults = a.Chaos.st_io_faults + b.Chaos.st_io_faults;
          st_enospc = a.Chaos.st_enospc + b.Chaos.st_enospc;
          st_degraded_writes =
            a.Chaos.st_degraded_writes + b.Chaos.st_degraded_writes;
          st_resumes = a.Chaos.st_resumes + b.Chaos.st_resumes;
          st_crashes = a.Chaos.st_crashes + b.Chaos.st_crashes;
          st_corruptions = a.Chaos.st_corruptions + b.Chaos.st_corruptions;
          st_scrub_findings =
            a.Chaos.st_scrub_findings + b.Chaos.st_scrub_findings;
          st_repairs = a.Chaos.st_repairs + b.Chaos.st_repairs;
          st_reseeds = a.Chaos.st_reseeds + b.Chaos.st_reseeds;
          st_checks = a.Chaos.st_checks + b.Chaos.st_checks;
        }
      in
      let zero =
        {
          Chaos.st_statements = 0;
          st_io_faults = 0;
          st_enospc = 0;
          st_degraded_writes = 0;
          st_resumes = 0;
          st_crashes = 0;
          st_corruptions = 0;
          st_scrub_findings = 0;
          st_repairs = 0;
          st_reseeds = 0;
          st_checks = 0;
        }
      in
      let total =
        List.fold_left
          (fun acc seed ->
            let r =
              Chaos.run_storage
                ~config:
                  {
                    Chaos.st_seed = seed;
                    st_ops = 40;
                    st_event_every = 6;
                    st_checkpoint_every = 11;
                    st_batch = (if seed mod 3 = 0 then 4 else 0);
                  }
                ~dir:(fresh_dir (Printf.sprintf "chaos%d" seed))
                ()
            in
            add acc r)
          zero seeds
      in
      (* aggregated across the matrix, every storage event and every
         recovery path must actually have been exercised *)
      let nonzero what n =
        if n <= 0 then Alcotest.failf "matrix never exercised %s" what
      in
      Alcotest.(check bool) "statements ran" true
        (total.Chaos.st_statements >= 12 * 40);
      nonzero "io.* faults" total.Chaos.st_io_faults;
      nonzero "ENOSPC episodes" total.Chaos.st_enospc;
      nonzero "degraded-mode rejections" total.Chaos.st_degraded_writes;
      nonzero "probe resumes" total.Chaos.st_resumes;
      nonzero "power cuts" total.Chaos.st_crashes;
      nonzero "corruptions" total.Chaos.st_corruptions;
      nonzero "scrub findings" total.Chaos.st_scrub_findings;
      nonzero "WAL repairs" total.Chaos.st_repairs;
      nonzero "feed reseeds" total.Chaos.st_reseeds;
      nonzero "oracle checks" total.Chaos.st_checks)

let () =
  Alcotest.run "storage"
    [
      ( "simulated disk",
        [
          Alcotest.test_case "budget: torn write + ENOSPC" `Quick
            test_sim_budget_torn;
          Alcotest.test_case "crash loses unsynced bytes" `Quick
            test_sim_crash_durable_length;
          Alcotest.test_case "seeded bit flips" `Quick test_sim_bit_flip;
          Alcotest.test_case "io.* via the fault grammar" `Quick
            test_io_site_via_grammar;
        ] );
      ( "degraded mode",
        [
          Alcotest.test_case "ENOSPC degrades, probe resumes" `Quick
            test_enospc_degrade_resume;
          Alcotest.test_case "failed fresh-WAL install" `Quick
            test_checkpoint_install_degrades;
          Alcotest.test_case "failed rollback truncate" `Quick
            test_failed_rollback_degrades;
        ] );
      ( "typed errors",
        [
          Alcotest.test_case "Truncate_error carries path and target" `Quick
            test_truncate_back_typed_error;
        ] );
      ( "io site sweep",
        [ Alcotest.test_case "every site x both kinds" `Quick test_io_site_sweep ] );
      ( "scrub & repair",
        [
          Alcotest.test_case "stale tmp swept at open" `Quick
            test_tmp_sweep_at_open;
          Alcotest.test_case "feed tmp swept at open" `Quick test_feed_tmp_sweep;
          Alcotest.test_case "WAL rebuilt from feed, bit-identical" `Quick
            test_wal_rebuild_from_feed;
          QCheck_alcotest.to_alcotest scrub_flip_property;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "storage matrix" `Slow test_storage_chaos_matrix;
        ] );
    ]
