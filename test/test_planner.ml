(* Tests of the planner: binding, physical join selection, the Fig. 2
   window → self-join rewrite, and end-to-end execution through the
   engine facade. *)

open Rfview_relalg
module Engine = Rfview_engine
module Db = Rfview_engine.Database

(* Checker-verify every bound plan and translation-validate every
   rewrite pass while the suite runs. *)
let () = Rfview_analysis.Verify.enable ()

let set_window_mode db mode =
  Db.reconfigure db { (Db.config db) with Db.window_mode = mode }

let set_window_strategy db strategy =
  Db.reconfigure db { (Db.config db) with Db.window_strategy = strategy }

let fresh_db_with_seq ?(name = "seq") data =
  let db = Db.create () in
  ignore (Db.exec db (Printf.sprintf "CREATE TABLE %s (pos INT, val FLOAT)" name));
  if data <> [] then
    ignore
      (Db.exec db
         (Printf.sprintf "INSERT INTO %s VALUES %s" name
            (String.concat ", "
               (List.mapi (fun i v -> Printf.sprintf "(%d, %g)" (i + 1) v) data))));
  db

let ints_of_col r i =
  Array.to_list (Relation.column_values r i) |> List.map Value.to_int

let sorted_pairs r =
  Array.to_list (Relation.rows r)
  |> List.map (fun row -> (Value.to_int (Row.get row 0), Value.to_float (Row.get row 1)))
  |> List.sort compare

(* ---- Binding & execution basics ---- *)

let test_select_where_order () =
  let db = fresh_db_with_seq [ 10.; 20.; 30.; 40. ] in
  let r = Db.query db "SELECT pos, val FROM seq WHERE val > 15 ORDER BY pos DESC" in
  Alcotest.(check (list int)) "filtered and ordered" [ 4; 3; 2 ] (ints_of_col r 0)

let test_expressions_in_select () =
  let db = fresh_db_with_seq [ 1.; 2. ] in
  let r =
    Db.query db
      "SELECT pos * 10 + 1 AS x, CASE WHEN pos = 1 THEN 'one' ELSE 'other' END AS t \
       FROM seq ORDER BY x"
  in
  Alcotest.(check (list int)) "computed" [ 11; 21 ] (ints_of_col r 0);
  Alcotest.(check string) "case" "one"
    (Value.to_string (Row.get (Relation.rows r).(0) 1))

let test_group_having () =
  let db = fresh_db_with_seq [ 5.; 5.; 7.; 7.; 7. ] in
  let r =
    Db.query db
      "SELECT val, COUNT(*) AS n, SUM(pos) AS s FROM seq GROUP BY val HAVING COUNT(*) \
       > 2 ORDER BY val"
  in
  Alcotest.(check int) "one group" 1 (Relation.cardinality r);
  Alcotest.(check (list int)) "count" [ 3 ] (ints_of_col r 1);
  Alcotest.(check (list int)) "sum pos" [ 12 ] (ints_of_col r 2)

let test_global_aggregate () =
  let db = fresh_db_with_seq [ 1.; 2.; 3. ] in
  let r = Db.query db "SELECT SUM(val) AS s, COUNT(*) AS n, AVG(val) AS a FROM seq" in
  let row = (Relation.rows r).(0) in
  Alcotest.(check bool) "sum" true (Value.to_float (Row.get row 0) = 6.);
  Alcotest.(check int) "count" 3 (Value.to_int (Row.get row 1));
  Alcotest.(check bool) "avg" true (Value.to_float (Row.get row 2) = 2.)

let test_join_and_alias () =
  let db = fresh_db_with_seq [ 1.; 2.; 3. ] in
  let r =
    Db.query db
      "SELECT s1.pos, s2.pos FROM seq s1, seq s2 WHERE s2.pos = s1.pos + 1 ORDER BY 1"
  in
  Alcotest.(check (list int)) "left side" [ 1; 2 ] (ints_of_col r 0);
  Alcotest.(check (list int)) "right side" [ 2; 3 ] (ints_of_col r 1)

let test_left_join_coalesce () =
  let db = fresh_db_with_seq [ 1.; 2.; 3. ] in
  let r =
    Db.query db
      "SELECT s.pos, COALESCE(c.val, 0) AS v FROM seq s LEFT OUTER JOIN (SELECT pos, \
       val FROM seq WHERE pos = 2) c ON c.pos = s.pos ORDER BY s.pos"
  in
  Alcotest.(check bool) "unmatched filled" true
    (List.map snd (sorted_pairs r) = [ 0.; 2.; 0. ])

let test_subquery_union () =
  let db = fresh_db_with_seq [ 1.; 2. ] in
  let r =
    Db.query db
      "SELECT pos, SUM(v) AS s FROM (SELECT pos, val AS v FROM seq UNION ALL SELECT \
       pos, val * 10 AS v FROM seq) u GROUP BY pos ORDER BY pos"
  in
  Alcotest.(check bool) "summed union" true
    (List.map snd (sorted_pairs r) = [ 11.; 22. ])

let test_order_by_alias_and_ordinal () =
  let db = fresh_db_with_seq [ 3.; 1.; 2. ] in
  let r1 = Db.query db "SELECT pos, val AS v FROM seq ORDER BY v" in
  Alcotest.(check (list int)) "by alias" [ 2; 3; 1 ] (ints_of_col r1 0);
  let r2 = Db.query db "SELECT pos, val FROM seq ORDER BY 2 DESC" in
  Alcotest.(check (list int)) "by ordinal" [ 1; 3; 2 ] (ints_of_col r2 0)

let test_bind_errors () =
  let db = fresh_db_with_seq [ 1. ] in
  let fails sql =
    match Db.query db sql with
    | exception Rfview_planner.Binder.Bind_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unknown column" true (fails "SELECT nope FROM seq");
  Alcotest.(check bool) "unknown table" true (fails "SELECT 1 FROM nope");
  Alcotest.(check bool) "ambiguous" true
    (fails "SELECT pos FROM seq s1, seq s2 WHERE s1.pos = s2.pos");
  Alcotest.(check bool) "agg in where" true
    (fails "SELECT pos FROM seq WHERE SUM(val) > 1");
  Alcotest.(check bool) "non-grouped column" true
    (fails "SELECT pos, SUM(val) FROM seq GROUP BY val")

(* ---- Physical plan selection ---- *)

let test_plan_selection () =
  let db = fresh_db_with_seq [ 1.; 2.; 3.; 4.; 5. ] in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  (* no index: nested loop for the range self join *)
  let e1 =
    Db.explain db
      "SELECT s1.pos, SUM(s2.val) FROM seq s1, seq s2 WHERE s2.pos BETWEEN s1.pos - 1 \
       AND s1.pos + 1 GROUP BY s1.pos"
  in
  Alcotest.(check bool) "nested loop without index" true (contains e1 "nested-loop");
  (* equality: hash join *)
  let e2 =
    Db.explain db "SELECT s1.pos FROM seq s1, seq s2 WHERE MOD(s1.pos, 3) = MOD(s2.pos, 3)"
  in
  Alcotest.(check bool) "hash join on computed keys" true (contains e2 "hash");
  (* with index: index range join *)
  ignore (Db.exec db "CREATE INDEX seq_pos ON seq (pos)");
  let e3 =
    Db.explain db
      "SELECT s1.pos, SUM(s2.val) FROM seq s1, seq s2 WHERE s2.pos BETWEEN s1.pos - 1 \
       AND s1.pos + 1 GROUP BY s1.pos"
  in
  Alcotest.(check bool) "index range join" true (contains e3 "index(seq.pos range)");
  (* disjunctive predicate: nested loop even with the index *)
  let e4 =
    Db.explain db
      "SELECT s1.pos FROM seq s1, seq s2 WHERE (s2.pos = s1.pos) OR (s2.pos = s1.pos + 1)"
  in
  Alcotest.(check bool) "disjunction forces nested loop" true (contains e4 "nested-loop");
  (* IN probe *)
  let e5 =
    Db.explain db
      "SELECT s1.pos FROM seq s1, seq s2 WHERE s2.pos IN (s1.pos - 1, s1.pos, s1.pos + 1)"
  in
  Alcotest.(check bool) "IN probe uses index" true (contains e5 "index(seq.pos in")

let test_join_results_same_with_and_without_index () =
  let data = List.init 30 (fun i -> float_of_int ((i * 7 mod 13) - 5)) in
  let sql =
    "SELECT s1.pos AS pos, SUM(s2.val) AS val FROM seq s1, seq s2 WHERE s2.pos \
     BETWEEN s1.pos - 2 AND s1.pos + 1 GROUP BY s1.pos"
  in
  let db1 = fresh_db_with_seq data in
  let r1 = Db.query db1 sql in
  let db2 = fresh_db_with_seq data in
  ignore (Db.exec db2 "CREATE INDEX seq_pos ON seq (pos)");
  let r2 = Db.query db2 sql in
  Alcotest.(check bool) "same result" true (Relation.equal_bag r1 r2)

(* ---- Window execution and the Fig. 2 rewrite ---- *)

let window_queries =
  [
    "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS w FROM seq";
    "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) \
     AS w FROM seq";
    "SELECT pos, AVG(val) OVER (ORDER BY pos ROWS BETWEEN CURRENT ROW AND 3 FOLLOWING) \
     AS w FROM seq";
    "SELECT pos, COUNT(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND CURRENT \
     ROW) AS w FROM seq";
    "SELECT pos, MIN(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 2 FOLLOWING) \
     AS w FROM seq";
    "SELECT pos, val, SUM(val) OVER (PARTITION BY MOD(pos, 3) ORDER BY pos ROWS \
     UNBOUNDED PRECEDING) AS w FROM seq";
    "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS a, SUM(val) \
     OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 2 FOLLOWING) AS b FROM seq";
  ]

let test_native_equals_self_join () =
  let data = List.init 25 (fun i -> float_of_int ((i * 11 mod 17) - 8)) in
  List.iter
    (fun sql ->
      let db = fresh_db_with_seq data in
      set_window_mode db `Native;
      let native = Db.query db sql in
      set_window_mode db `Self_join;
      let simulated = Db.query db sql in
      if not (Relation.equal_bag native simulated) then
        Alcotest.failf "rewrite mismatch for: %s@.native:@.%s@.simulated:@.%s" sql
          (Relation.render (Relation.sorted_by_all native))
          (Relation.render (Relation.sorted_by_all simulated)))
    window_queries

let test_self_join_rewrite_qcheck =
  QCheck.Test.make ~count:60 ~name:"native = self-join (random data)"
    QCheck.(
      make
        Gen.(
          let* n = int_range 0 30 in
          let* vals = list_size (return n) (map float_of_int (int_range (-20) 20)) in
          let* l = int_range 0 4 in
          let* h = int_range 0 4 in
          let* cum = bool in
          let* partitioned = bool in
          return (vals, l, h, cum, partitioned)))
    (fun (vals, l, h, cum, partitioned) ->
      let frame =
        if cum then "ROWS UNBOUNDED PRECEDING"
        else Printf.sprintf "ROWS BETWEEN %d PRECEDING AND %d FOLLOWING" l h
      in
      let partition = if partitioned then "PARTITION BY MOD(pos, 4) " else "" in
      let sql =
        Printf.sprintf
          "SELECT pos, SUM(val) OVER (%sORDER BY pos %s) AS w FROM seq" partition frame
      in
      let db = fresh_db_with_seq vals in
      set_window_mode db `Native;
      let native = Db.query db sql in
      set_window_mode db `Self_join;
      let simulated = Db.query db sql in
      Relation.equal_bag native simulated)

let test_ranking_sql () =
  let db = fresh_db_with_seq [ 30.; 10.; 30.; 20. ] in
  let r =
    Db.query db
      "SELECT pos, RANK() OVER (ORDER BY val) AS rk, ROW_NUMBER() OVER (ORDER BY val \
       DESC) AS rn, DENSE_RANK() OVER (ORDER BY val) AS dr FROM seq ORDER BY pos"
  in
  let col i = Array.to_list (Relation.column_values r i) |> List.map Value.to_int in
  Alcotest.(check (list int)) "rank" [ 3; 1; 3; 2 ] (col 1);
  Alcotest.(check (list int)) "row_number desc" [ 1; 4; 2; 3 ] (col 2);
  Alcotest.(check (list int)) "dense_rank" [ 3; 1; 3; 2 ] (col 3);
  (* TOP(n) analysis: rank in a subquery, filter outside *)
  let top =
    Db.query db
      "SELECT pos, val FROM (SELECT pos, val, RANK() OVER (ORDER BY val DESC) AS rk \
       FROM seq) t WHERE rk <= 2 ORDER BY val DESC, pos"
  in
  Alcotest.(check (list int)) "top-2 by value" [ 1; 3 ] (ints_of_col top 0);
  (* ranking functions reject frames and require ORDER BY *)
  let fails sql =
    match Db.query db sql with
    | exception Rfview_planner.Binder.Bind_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "frame rejected" true
    (fails "SELECT RANK() OVER (ORDER BY val ROWS UNBOUNDED PRECEDING) FROM seq");
  Alcotest.(check bool) "order required" true
    (fails "SELECT RANK() OVER (PARTITION BY val) FROM seq")

let test_navigation_sql () =
  let db = fresh_db_with_seq [ 10.; 20.; 30.; 40. ] in
  let r =
    Db.query db
      "SELECT pos, LAG(val) OVER (ORDER BY pos) AS prev, LEAD(val, 2) OVER (ORDER BY \
       pos) AS nxt2, FIRST_VALUE(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING \
       AND 1 FOLLOWING) AS fv, LAST_VALUE(val) OVER (ORDER BY pos ROWS UNBOUNDED \
       PRECEDING) AS lv FROM seq ORDER BY pos"
  in
  let col i = Array.to_list (Relation.column_values r i) in
  Alcotest.(check bool) "lag" true
    (col 1 = [ Value.Null; Value.Float 10.; Value.Float 20.; Value.Float 30. ]);
  Alcotest.(check bool) "lead 2" true
    (col 2 = [ Value.Float 30.; Value.Float 40.; Value.Null; Value.Null ]);
  Alcotest.(check bool) "first_value" true
    (col 3 = [ Value.Float 10.; Value.Float 10.; Value.Float 20.; Value.Float 30. ]);
  Alcotest.(check bool) "last_value cumulative" true
    (col 4 = [ Value.Float 10.; Value.Float 20.; Value.Float 30.; Value.Float 40. ]);
  (* day-over-day delta: the classic LAG idiom *)
  let d =
    Db.query db
      "SELECT val - LAG(val) OVER (ORDER BY pos) AS delta FROM seq ORDER BY pos"
  in
  Alcotest.(check bool) "delta" true
    (Array.to_list (Relation.column_values d 0)
    = [ Value.Null; Value.Float 10.; Value.Float 10.; Value.Float 10. ]);
  let fails sql =
    match Db.query db sql with
    | exception Rfview_planner.Binder.Bind_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "lag without order" true
    (fails "SELECT LAG(val) OVER (PARTITION BY pos) FROM seq");
  Alcotest.(check bool) "bad offset" true
    (fails "SELECT LAG(val, val) OVER (ORDER BY pos) FROM seq")

let test_window_strategy_equivalence () =
  let data = List.init 40 (fun i -> float_of_int ((i * 13 mod 23) - 11)) in
  let sql =
    "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 2 \
     FOLLOWING) AS w FROM seq"
  in
  let db = fresh_db_with_seq data in
  set_window_strategy db Window.Naive;
  let naive = Db.query db sql in
  set_window_strategy db Window.Incremental;
  let incr = Db.query db sql in
  Alcotest.(check bool) "strategies agree" true (Relation.equal_bag naive incr)

let () =
  Alcotest.run "planner"
    [
      ( "basics",
        [
          Alcotest.test_case "select/where/order" `Quick test_select_where_order;
          Alcotest.test_case "expressions" `Quick test_expressions_in_select;
          Alcotest.test_case "group/having" `Quick test_group_having;
          Alcotest.test_case "global aggregate" `Quick test_global_aggregate;
          Alcotest.test_case "join + alias" `Quick test_join_and_alias;
          Alcotest.test_case "left join + coalesce" `Quick test_left_join_coalesce;
          Alcotest.test_case "subquery + union" `Quick test_subquery_union;
          Alcotest.test_case "order by alias/ordinal" `Quick test_order_by_alias_and_ordinal;
          Alcotest.test_case "bind errors" `Quick test_bind_errors;
        ] );
      ( "physical",
        [
          Alcotest.test_case "plan selection" `Quick test_plan_selection;
          Alcotest.test_case "index equivalence" `Quick
            test_join_results_same_with_and_without_index;
        ] );
      ( "window",
        [
          Alcotest.test_case "native = self-join (fixed)" `Quick test_native_equals_self_join;
          QCheck_alcotest.to_alcotest test_self_join_rewrite_qcheck;
          Alcotest.test_case "strategy equivalence" `Quick test_window_strategy_equivalence;
          Alcotest.test_case "ranking functions" `Quick test_ranking_sql;
          Alcotest.test_case "navigation functions" `Quick test_navigation_sql;
        ] );
    ]
