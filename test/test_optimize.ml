(* Tests of the logical optimizer (predicate pushdown) and of the
   engine's error handling (failure injection). *)

open Rfview_relalg
module Db = Rfview_engine.Database
module P = Rfview_planner

(* Translation-validate every optimizer/rewrite pass and checker-verify
   every bound plan while the suite runs. *)
let () = Rfview_analysis.Verify.enable ()

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let db3 () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE a (x INT, u INT)");
  ignore (Db.exec db "CREATE TABLE b (y INT, v INT)");
  ignore (Db.exec db "CREATE TABLE c (z INT, w INT)");
  ignore (Db.exec db "INSERT INTO a VALUES (1, 10), (2, 20), (3, 30)");
  ignore (Db.exec db "INSERT INTO b VALUES (1, 100), (2, 200), (4, 400)");
  ignore (Db.exec db "INSERT INTO c VALUES (1, 7), (3, 9)");
  db

(* ---- Pushdown shapes ---- *)

let test_pushdown_into_join () =
  let db = db3 () in
  let e = Db.explain db "SELECT x FROM a, b WHERE x = y AND u > 15" in
  (* the equality reached the join (hash), the left-only filter sank below *)
  Alcotest.(check bool) "hash join chosen" true (contains e "[hash]");
  Alcotest.(check bool) "filter below join" true
    (contains e "Filter (($1 > 15))" || contains e "Filter ($1 > 15)")

let test_pushdown_three_way () =
  let db = db3 () in
  let r =
    Db.query db
      "SELECT x, v, w FROM a, b, c WHERE x = y AND x = z ORDER BY x"
  in
  Alcotest.(check int) "rows" 1 (Relation.cardinality r);
  let row = (Relation.rows r).(0) in
  Alcotest.(check int) "x" 1 (Value.to_int (Row.get row 0));
  Alcotest.(check int) "v" 100 (Value.to_int (Row.get row 1));
  Alcotest.(check int) "w" 7 (Value.to_int (Row.get row 2))

let test_left_join_where_not_pushed () =
  (* a WHERE predicate on the nullable side must not become an ON
     predicate (it filters after padding) *)
  let db = db3 () in
  let with_where =
    Db.query db
      "SELECT x, v FROM a LEFT OUTER JOIN b ON x = y WHERE v > 150"
  in
  Alcotest.(check int) "where filters padded rows" 1 (Relation.cardinality with_where);
  let on_pred =
    Db.query db "SELECT x, v FROM a LEFT OUTER JOIN b ON x = y AND v > 150"
  in
  Alcotest.(check int) "on keeps all left rows" 3 (Relation.cardinality on_pred)

(* Structural checks: where do WHERE conjuncts land around a LEFT OUTER
   join after pushdown?  Only predicates on the preserved (left) side may
   sink below the join; anything touching the nullable side must stay in
   a Filter above it, or padded rows would be judged before padding. *)
let optimized_plan db sql =
  P.Optimize.optimize (P.Binder.bind_query (Db.binder_catalog db) (Rfview_sql.Parser.query sql))

let rec find_left_outer (p : P.Logical.t) : P.Logical.t option =
  match p with
  | P.Logical.Join { kind = Joinop.Left_outer; _ } -> Some p
  | P.Logical.Scan _ -> None
  | P.Logical.Filter { input; _ }
  | P.Logical.Project { input; _ }
  | P.Logical.Window_op { input; _ }
  | P.Logical.Number { input; _ }
  | P.Logical.Sort { input; _ }
  | P.Logical.Distinct input
  | P.Logical.Limit { input; _ }
  | P.Logical.Aggregate { input; _ }
  | P.Logical.Alias { input; _ } -> find_left_outer input
  | P.Logical.Join { left; right; _ } | P.Logical.Union_all { left; right } ->
    (match find_left_outer left with Some _ as r -> r | None -> find_left_outer right)

let rec filter_above_left_outer (p : P.Logical.t) : bool =
  match p with
  | P.Logical.Filter { input; _ } -> find_left_outer input <> None
  | P.Logical.Project { input; _ }
  | P.Logical.Window_op { input; _ }
  | P.Logical.Number { input; _ }
  | P.Logical.Sort { input; _ }
  | P.Logical.Distinct input
  | P.Logical.Limit { input; _ }
  | P.Logical.Aggregate { input; _ }
  | P.Logical.Alias { input; _ } -> filter_above_left_outer input
  | P.Logical.Scan _ | P.Logical.Join _ | P.Logical.Union_all _ -> false

let left_input_filtered plan =
  match find_left_outer plan with
  | Some (P.Logical.Join { left; _ }) ->
    let rec has_filter = function
      | P.Logical.Filter _ -> true
      | P.Logical.Alias { input; _ } -> has_filter input
      | _ -> false
    in
    has_filter left
  | _ -> false

let test_left_outer_pushdown_shapes () =
  let db = db3 () in
  (* left-only conjunct: sinks below the join, no residual filter *)
  let p =
    optimized_plan db
      "SELECT x, v FROM a LEFT OUTER JOIN b ON x = y WHERE u > 15"
  in
  Alcotest.(check bool) "left conjunct sinks below join" true
    (left_input_filtered p);
  Alcotest.(check bool) "no residual filter above join" false
    (filter_above_left_outer p);
  (* right-side conjunct: must stay in a Filter above the join *)
  let p =
    optimized_plan db
      "SELECT x, v FROM a LEFT OUTER JOIN b ON x = y WHERE v > 150"
  in
  Alcotest.(check bool) "right conjunct stays above join" true
    (filter_above_left_outer p);
  Alcotest.(check bool) "right conjunct did not sink left" false
    (left_input_filtered p);
  (* mixed conjunct (references both sides): also stays above *)
  let p =
    optimized_plan db
      "SELECT x, v FROM a LEFT OUTER JOIN b ON x = y WHERE u + v > 100"
  in
  Alcotest.(check bool) "mixed conjunct stays above join" true
    (filter_above_left_outer p);
  Alcotest.(check bool) "mixed conjunct did not sink left" false
    (left_input_filtered p);
  (* split: the left part sinks, the rest stays above *)
  let p =
    optimized_plan db
      "SELECT x, v FROM a LEFT OUTER JOIN b ON x = y WHERE u > 15 AND v > 150"
  in
  Alcotest.(check bool) "split: left part sinks" true (left_input_filtered p);
  Alcotest.(check bool) "split: right part stays above" true
    (filter_above_left_outer p)

(* Random conjunctive queries: the optimizer must not change results. *)
let prop_pushdown_preserves_semantics =
  QCheck.Test.make ~count:200 ~name:"pushdown preserves results"
    QCheck.(
      make
        ~print:(fun (c1, c2, c3) -> Printf.sprintf "%s AND %s AND %s" c1 c2 c3)
        Gen.(
          let atom =
            oneofl
              [ "a.x = b.y"; "a.x < b.y"; "a.u > 15"; "b.v <= 200"; "a.x + 1 = b.y";
                "MOD(a.u, 3) = MOD(b.v, 3)"; "a.x BETWEEN 1 AND 2"; "b.y IN (1, 2)";
                "a.x = 2 OR b.y = 1"; "TRUE" ]
          in
          triple atom atom atom))
    (fun (c1, c2, c3) ->
      let sql =
        Printf.sprintf "SELECT a.x, b.y FROM a, b WHERE %s AND %s AND %s" c1 c2 c3
      in
      (* reference: force nested loops and no index by a fresh db without
         indexes and hash joins disabled *)
      let db1 = db3 () in
      Db.reconfigure db1 { (Db.config db1) with Db.hash_join = false };
      let reference = Db.query db1 sql in
      let db2 = db3 () in
      ignore (Db.exec db2 "CREATE INDEX bi ON b (y)");
      let optimized = Db.query db2 sql in
      Relation.equal_bag reference optimized)

(* ---- Failure injection ---- *)

let test_engine_errors () =
  let db = db3 () in
  let engine_fails sql =
    match Db.exec db sql with
    | exception Db.Engine_error _ -> true
    | exception Rfview_engine.Catalog.Catalog_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "insert arity" true
    (engine_fails "INSERT INTO a (x) VALUES (1, 2)");
  Alcotest.(check bool) "insert unknown column" true
    (engine_fails "INSERT INTO a (nope) VALUES (1)");
  Alcotest.(check bool) "incompatible type" true
    (engine_fails "INSERT INTO a VALUES ('text', 1)");
  Alcotest.(check bool) "unknown table update" true
    (engine_fails "UPDATE nope SET x = 1");
  Alcotest.(check bool) "duplicate index" true
    (ignore (Db.exec db "CREATE INDEX i1 ON a (x)");
     engine_fails "CREATE INDEX i1 ON a (x)");
  Alcotest.(check bool) "index on unknown column" true
    (engine_fails "CREATE INDEX i2 ON a (nope)");
  Alcotest.(check bool) "refresh unknown view" true
    (engine_fails "REFRESH MATERIALIZED VIEW nope")

let test_runtime_type_errors () =
  let db = db3 () in
  let fails sql =
    match Db.query db sql with
    | exception Value.Type_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "division by zero" true (fails "SELECT x / 0 FROM a");
  Alcotest.(check bool) "mod by zero" true (fails "SELECT MOD(x, 0) FROM a");
  (* ill-typed expressions are rejected statically, before execution *)
  Alcotest.(check bool) "string arithmetic" true
    (match Db.query db "SELECT 'a' + 1 FROM a" with
     | exception P.Binder.Bind_error _ -> true
     | _ -> false)

let test_view_dependency_behaviour () =
  (* dropping a base table leaves a materialized view answering from its
     last contents; refresh then fails *)
  let db = db3 () in
  ignore (Db.exec db "CREATE MATERIALIZED VIEW mv AS SELECT x FROM a");
  ignore (Db.exec db "DROP TABLE a");
  Alcotest.(check int) "stale contents still served" 3
    (Relation.cardinality (Db.query db "SELECT * FROM mv"));
  Alcotest.(check bool) "refresh now fails" true
    (match Db.exec db "REFRESH MATERIALIZED VIEW mv" with
     | exception Rfview_planner.Binder.Bind_error _ -> true
     | _ -> false)

let () =
  Alcotest.run "optimize"
    [
      ( "pushdown",
        [
          Alcotest.test_case "into join" `Quick test_pushdown_into_join;
          Alcotest.test_case "three-way" `Quick test_pushdown_three_way;
          Alcotest.test_case "left join semantics" `Quick test_left_join_where_not_pushed;
          Alcotest.test_case "left outer pushdown shapes" `Quick
            test_left_outer_pushdown_shapes;
          QCheck_alcotest.to_alcotest prop_pushdown_preserves_semantics;
        ] );
      ( "failures",
        [
          Alcotest.test_case "engine errors" `Quick test_engine_errors;
          Alcotest.test_case "runtime type errors" `Quick test_runtime_type_errors;
          Alcotest.test_case "view dependencies" `Quick test_view_dependency_behaviour;
        ] );
    ]
