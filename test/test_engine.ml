(* End-to-end engine tests: DDL/DML, materialized sequence views with
   incremental maintenance (§2.3), the derivability advisor (§3-§6) and
   the paper's relational derivation patterns (Figs. 4, 10, 13) executed
   through the SQL engine and checked against core-level derivation. *)

open Rfview_relalg
module Core = Rfview_core
module Db = Rfview_engine.Database

(* Checker-verify every bound plan and translation-validate every
   rewrite pass while the suite runs. *)
let () = Rfview_analysis.Verify.enable ()
module Advisor = Rfview_engine.Advisor
module Matview = Rfview_engine.Matview
module Parser = Rfview_sql.Parser

let sorted_rows r =
  Array.to_list (Relation.rows r) |> List.sort Row.compare

(* naive substring replacement, for retargeting generated SQL in tests *)
let replace_all s ~from ~into =
  let fl = String.length from in
  let buf = Buffer.create (String.length s) in
  let rec go i =
    if i >= String.length s then ()
    else if i + fl <= String.length s && String.sub s i fl = from then begin
      Buffer.add_string buf into;
      go (i + fl)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let check_same_bag what a b =
  if not (Relation.equal_bag a b) then
    Alcotest.failf "%s:@.left:@.%s@.right:@.%s" what
      (Relation.render (Relation.sorted_by_all a))
      (Relation.render (Relation.sorted_by_all b))

(* ---- Fixtures ---- *)

let db_with_seq data =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE seq (pos INT, val FLOAT)");
  if data <> [] then
    ignore
      (Db.exec db
         (Printf.sprintf "INSERT INTO seq VALUES %s"
            (String.concat ", "
               (List.mapi (fun i v -> Printf.sprintf "(%d, %g)" (i + 1) v) data))));
  db

(* Store a complete materialized sequence (with header and trailer) in a
   [matseq] table, as the derivation patterns require (§3.2). *)
let add_matseq db (seq : Core.Seqdata.t) =
  ignore (Db.exec db "CREATE TABLE matseq (pos INT, val FLOAT)");
  let lo = Core.Seqdata.stored_lo seq and hi = Core.Seqdata.stored_hi seq in
  let values =
    List.init (hi - lo + 1) (fun i ->
        Printf.sprintf "(%d, %g)" (lo + i) (Core.Seqdata.get seq (lo + i)))
  in
  ignore (Db.exec db (Printf.sprintf "INSERT INTO matseq VALUES %s" (String.concat ", " values)))

(* ---- DDL / DML ---- *)

let test_ddl_dml_roundtrip () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE t (a INT, b VARCHAR, c DATE)");
  ignore (Db.exec db "INSERT INTO t VALUES (1, 'x', DATE '2002-02-26')");
  ignore (Db.exec db "INSERT INTO t (b, a) VALUES ('y', 2)");
  let r = Db.query db "SELECT a, b, c FROM t ORDER BY a" in
  Alcotest.(check int) "two rows" 2 (Relation.cardinality r);
  let second = (Relation.rows r).(1) in
  Alcotest.(check bool) "missing column null" true (Value.is_null (Row.get second 2));
  ignore (Db.exec db "UPDATE t SET a = a + 10 WHERE b = 'x'");
  let r = Db.query db "SELECT a FROM t ORDER BY a" in
  Alcotest.(check bool) "updated" true
    (List.map (fun row -> Value.to_int (Row.get row 0)) (sorted_rows r) = [ 2; 11 ]);
  ignore (Db.exec db "DELETE FROM t WHERE a = 2");
  Alcotest.(check int) "deleted" 1 (Relation.cardinality (Db.query db "SELECT a FROM t"));
  ignore (Db.exec db "DROP TABLE t");
  Alcotest.(check bool) "gone" true
    (match Db.query db "SELECT a FROM t" with
     | exception Rfview_planner.Binder.Bind_error _ -> true
     | _ -> false)

let test_duplicate_table_rejected () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE t (a INT)");
  Alcotest.(check bool) "duplicate" true
    (match Db.exec db "CREATE TABLE t (a INT)" with
     | exception Rfview_engine.Catalog.Catalog_error _ -> true
     | _ -> false)

let test_plain_view_expansion () =
  let db = db_with_seq [ 1.; 2.; 3. ] in
  ignore (Db.exec db "CREATE VIEW doubled AS SELECT pos, val * 2 AS v FROM seq");
  let r = Db.query db "SELECT v FROM doubled WHERE pos > 1 ORDER BY v" in
  Alcotest.(check bool) "view works" true
    (List.map (fun row -> Value.to_float (Row.get row 0)) (sorted_rows r) = [ 4.; 6. ])

(* ---- Materialized sequence views: incremental maintenance ---- *)

let view_sql frame_sql =
  Printf.sprintf
    "CREATE MATERIALIZED VIEW v AS SELECT pos, val, SUM(val) OVER (ORDER BY pos %s) \
     AS s FROM seq"
    frame_sql

let test_matview_initial_contents () =
  let db = db_with_seq [ 1.; 2.; 3.; 4. ] in
  ignore (Db.exec db (view_sql "ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING"));
  Alcotest.(check bool) "incremental state established" true
    (Db.is_incrementally_maintained db "v");
  let r = Db.query db "SELECT s FROM v ORDER BY pos" in
  Alcotest.(check bool) "window values" true
    (Array.to_list (Relation.column_values r 0) |> List.map Value.to_float
     = [ 3.; 6.; 9.; 7. ])

let full_refresh_reference db =
  (* re-run the view definition directly *)
  Db.query db
    "SELECT pos, val, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 \
     FOLLOWING) AS s FROM seq"

let test_matview_incremental_insert_delete_update () =
  let db = db_with_seq [ 5.; 1.; 4. ] in
  ignore (Db.exec db (view_sql "ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING"));
  (* interior insert: pos 2 shifts ranks of later rows in ORDER BY pos *)
  ignore (Db.exec db "INSERT INTO seq VALUES (2, 10)");
  check_same_bag "after insert" (Db.query db "SELECT * FROM v") (full_refresh_reference db);
  ignore (Db.exec db "UPDATE seq SET val = 7 WHERE pos = 3");
  check_same_bag "after update" (Db.query db "SELECT * FROM v") (full_refresh_reference db);
  ignore (Db.exec db "DELETE FROM seq WHERE pos = 1");
  check_same_bag "after delete" (Db.query db "SELECT * FROM v") (full_refresh_reference db);
  Alcotest.(check bool) "still incremental" true (Db.is_incrementally_maintained db "v")

let test_matview_partitioned () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE tx (grp INT, pos INT, amount FLOAT)");
  ignore
    (Db.exec db
       "INSERT INTO tx VALUES (1, 1, 10), (1, 2, 20), (2, 1, 100), (2, 2, 200)");
  ignore
    (Db.exec db
       "CREATE MATERIALIZED VIEW vp AS SELECT grp, pos, SUM(amount) OVER (PARTITION \
        BY grp ORDER BY pos ROWS UNBOUNDED PRECEDING) AS s FROM tx");
  Alcotest.(check bool) "incremental" true (Db.is_incrementally_maintained db "vp");
  ignore (Db.exec db "INSERT INTO tx VALUES (2, 3, 300), (3, 1, 7)");
  let reference =
    Db.query db
      "SELECT grp, pos, SUM(amount) OVER (PARTITION BY grp ORDER BY pos ROWS \
       UNBOUNDED PRECEDING) AS s FROM tx"
  in
  check_same_bag "partitioned maintenance" (Db.query db "SELECT * FROM vp") reference

let test_matview_fallback_on_nulls () =
  (* NULL in the value column: the incremental path must decline and the
     view must still be correct via full refresh *)
  let db = db_with_seq [ 1.; 2. ] in
  ignore (Db.exec db (view_sql "ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING"));
  ignore (Db.exec db "INSERT INTO seq (pos) VALUES (3)");
  Alcotest.(check bool) "fell back" false (Db.is_incrementally_maintained db "v");
  let reference =
    Db.query db
      "SELECT pos, val, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 \
       FOLLOWING) AS s FROM seq"
  in
  check_same_bag "still correct" (Db.query db "SELECT * FROM v") reference

(* Randomized DML stream: incremental contents must always equal a full
   recomputation of the definition.  Positions are kept unique (duplicate
   ORDER BY keys make window results tie-order-dependent, in real SQL
   engines as much as here), so ops are abstract and materialized against
   the live position set inside the property. *)
type dml_op =
  | Op_insert of int * int  (* position choice seed, value *)
  | Op_delete of int
  | Op_update_val of int * int
  | Op_move of int * int    (* existing choice seed, new position seed *)

let arb_dml_stream =
  QCheck.make
    ~print:(fun ops ->
      String.concat "; "
        (List.map
           (function
             | Op_insert (p, v) -> Printf.sprintf "ins(%d,%d)" p v
             | Op_delete p -> Printf.sprintf "del(%d)" p
             | Op_update_val (p, v) -> Printf.sprintf "upd(%d,%d)" p v
             | Op_move (p, d) -> Printf.sprintf "mov(%d,%d)" p d)
           ops))
    QCheck.Gen.(
      let op =
        frequency
          [
            (4, map (fun (p, v) -> Op_insert (p, v)) (pair (int_range 0 50) (int_range (-9) 9)));
            (2, map (fun p -> Op_delete p) (int_range 0 50));
            (2, map (fun (p, v) -> Op_update_val (p, v)) (pair (int_range 0 50) (int_range (-9) 9)));
            (1, map (fun (p, d) -> Op_move (p, d)) (pair (int_range 0 50) (int_range 0 50)));
          ]
      in
      list_size (int_range 1 12) op)

let prop_matview_dml_stream ops =
  let db = db_with_seq [ 3.; 1.; 2. ] in
  ignore (Db.exec db (view_sql "ROWS BETWEEN 1 PRECEDING AND 2 FOLLOWING"));
  let positions = ref [ 1; 2; 3 ] (* sorted unique *) in
  let pick seed =
    match !positions with
    | [] -> None
    | ps -> Some (List.nth ps (seed mod List.length ps))
  in
  let fresh seed =
    let rec go c = if List.mem c !positions then go (c + 1) else c in
    go (1 + (seed mod 60))
  in
  let sql_of op =
    match op with
    | Op_insert (seed, v) ->
      let p = fresh seed in
      positions := List.sort compare (p :: !positions);
      Some (Printf.sprintf "INSERT INTO seq VALUES (%d, %d)" p v)
    | Op_delete seed ->
      (match pick seed with
       | None -> None
       | Some p ->
         positions := List.filter (fun q -> q <> p) !positions;
         Some (Printf.sprintf "DELETE FROM seq WHERE pos = %d" p))
    | Op_update_val (seed, v) ->
      (match pick seed with
       | None -> None
       | Some p -> Some (Printf.sprintf "UPDATE seq SET val = %d WHERE pos = %d" v p))
    | Op_move (seed, dseed) ->
      (match pick seed with
       | None -> None
       | Some p ->
         let d = fresh dseed in
         positions := List.sort compare (d :: List.filter (fun q -> q <> p) !positions);
         Some (Printf.sprintf "UPDATE seq SET pos = %d WHERE pos = %d" d p))
  in
  List.for_all
    (fun op ->
      match sql_of op with
      | None -> true
      | Some sql ->
        ignore (Db.exec db sql);
        let reference =
          Db.query db
            "SELECT pos, val, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING \
             AND 2 FOLLOWING) AS s FROM seq"
        in
        Relation.equal_bag (Db.query db "SELECT * FROM v") reference)
    ops

(* ---- Relational derivation patterns through the engine ---- *)

(* Compare the generated pattern SQL (over the materialized view table)
   with the direct computation of the target sequence, at body positions. *)
let pattern_matches ~n ~lx ~hx ~ly ~hy sql_of : (unit, string) result =
  let data = Array.init n (fun i -> float_of_int ((i * 7 mod 11) - 5)) in
  let raw = Core.Seqdata.raw_of_array data in
  let view = Core.Compute.sequence (Core.Frame.sliding ~l:lx ~h:hx) raw in
  let target = Core.Compute.sequence (Core.Frame.sliding ~l:ly ~h:hy) raw in
  let db = Db.create () in
  add_matseq db view;
  let result = Db.query db (sql_of ()) in
  (* index the result by position *)
  let tbl = Hashtbl.create 64 in
  Relation.iter
    (fun row -> Hashtbl.replace tbl (Value.to_int (Row.get row 0)) (Row.get row 1))
    result;
  let bad = ref None in
  for k = 1 to n do
    if !bad = None then
      match Hashtbl.find_opt tbl k with
      | None -> bad := Some (Printf.sprintf "missing position %d" k)
      | Some v ->
        let expected = Core.Seqdata.get target k in
        let got = Value.to_float v in
        if Float.abs (expected -. got) > 1e-6 then
          bad := Some (Printf.sprintf "position %d: expected %g, got %g" k expected got)
  done;
  match !bad with None -> Ok () | Some m -> Error m

let check_pattern ~n ~lx ~hx ~ly ~hy sql_of =
  match pattern_matches ~n ~lx ~hx ~ly ~hy sql_of with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_maxoa_pattern_disjunctive () =
  check_pattern ~n:40 ~lx:2 ~hx:1 ~ly:4 ~hy:1 (fun () ->
      Core.Sqlgen.maxoa ~lx:2 ~h:1 ~ly:4 `Disjunctive)

let test_maxoa_pattern_union () =
  check_pattern ~n:40 ~lx:2 ~hx:1 ~ly:4 ~hy:1 (fun () ->
      Core.Sqlgen.maxoa ~lx:2 ~h:1 ~ly:4 `Union)

let test_minoa_pattern_disjunctive () =
  check_pattern ~n:40 ~lx:2 ~hx:1 ~ly:3 ~hy:2 (fun () ->
      Core.Sqlgen.minoa ~lx:2 ~hx:1 ~ly:3 ~hy:2 `Disjunctive)

let test_minoa_pattern_union () =
  check_pattern ~n:40 ~lx:2 ~hx:1 ~ly:3 ~hy:2 (fun () ->
      Core.Sqlgen.minoa ~lx:2 ~hx:1 ~ly:3 ~hy:2 `Union)

let test_minoa_pattern_colliding_residues () =
  (* ∆l + ∆h a multiple of the view window size: the two residue classes
     coincide and the signed-CASE form must still be exact *)
  check_pattern ~n:30 ~lx:1 ~hx:1 ~ly:3 ~hy:2 (fun () ->
      Core.Sqlgen.minoa ~lx:1 ~hx:1 ~ly:3 ~hy:2 `Disjunctive)

let test_minoa_shrink () =
  (* MinOA can also shrink windows *)
  check_pattern ~n:25 ~lx:2 ~hx:2 ~ly:1 ~hy:0 (fun () ->
      Core.Sqlgen.minoa ~lx:2 ~hx:2 ~ly:1 ~hy:0 `Disjunctive)

(* Random pattern check across window shapes and variants. *)
let arb_pattern_case =
  QCheck.make
    ~print:(fun (n, lx, hx, dl, dh, alg) ->
      Printf.sprintf "n=%d view=(%d,%d) dl=%d dh=%d %s" n lx hx dl dh alg)
    QCheck.Gen.(
      let* n = int_range 1 30 in
      let* lx = int_range 0 3 in
      let* hx = int_range 0 3 in
      let* alg = oneofl [ "maxoa-d"; "maxoa-u"; "minoa-d"; "minoa-u" ] in
      match alg with
      | "maxoa-d" | "maxoa-u" ->
        let cap = lx + hx in
        if cap = 0 then return (n, 0, 1, 1, 0, alg)
        else
          let* dl = int_range 1 cap in
          return (n, lx, hx, dl, 0, alg)
      | _ ->
        let* dl = int_range (-lx) 4 in
        let* dh = int_range (-hx) 4 in
        if dl = 0 && dh = 0 then return (n, lx, hx, 1, 0, alg)
        else return (n, lx, hx, dl, dh, alg))

let prop_pattern (n, lx, hx, dl, dh, alg) =
  let ly = lx + dl and hy = hx + dh in
  pattern_matches ~n ~lx ~hx ~ly ~hy (fun () ->
      match alg with
      | "maxoa-d" -> Core.Sqlgen.maxoa ~lx ~h:hx ~ly `Disjunctive
      | "maxoa-u" -> Core.Sqlgen.maxoa ~lx ~h:hx ~ly `Union
      | "minoa-d" -> Core.Sqlgen.minoa ~lx ~hx ~ly ~hy `Disjunctive
      | _ -> Core.Sqlgen.minoa ~lx ~hx ~ly ~hy `Union)
  = Ok ()

let test_fig4_reconstruction () =
  (* raw values from a cumulative view through the engine *)
  let data = Array.init 20 (fun i -> float_of_int ((i * 5 mod 7) - 3)) in
  let raw = Core.Seqdata.raw_of_array data in
  let view = Core.Compute.sequence Core.Frame.Cumulative raw in
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE matseq (pos INT, val FLOAT)");
  ignore
    (Db.exec db
       (Printf.sprintf "INSERT INTO matseq VALUES %s"
          (String.concat ", "
             (List.init 20 (fun i ->
                  Printf.sprintf "(%d, %g)" (i + 1) (Core.Seqdata.get view (i + 1)))))));
  let r = Db.query db (Core.Sqlgen.fig4_reconstruct ()) in
  let tbl = Hashtbl.create 32 in
  Relation.iter
    (fun row -> Hashtbl.replace tbl (Value.to_int (Row.get row 0)) (Row.get row 1))
    r;
  Array.iteri
    (fun i expected ->
      match Hashtbl.find_opt tbl (i + 1) with
      | Some v when Float.abs (Value.to_float v -. expected) <= 1e-9 -> ()
      | _ -> Alcotest.failf "raw value %d not reconstructed" (i + 1))
    data

(* ---- Advisor ---- *)

let test_advisor_exact_and_derivable () =
  let db = db_with_seq [ 3.; 1.; 4.; 1.; 5.; 9.; 2.; 6. ] in
  ignore
    (Db.exec db
       "CREATE MATERIALIZED VIEW v21 AS SELECT pos, SUM(val) OVER (ORDER BY pos ROWS \
        BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS s FROM seq");
  let q_sql =
    "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 2 \
     FOLLOWING) AS s FROM seq"
  in
  let q = Parser.query q_sql in
  (match Advisor.answer db q with
   | None -> Alcotest.fail "expected a derivation"
   | Some (result, proposal) ->
     Alcotest.(check string) "view" "v21" proposal.Advisor.view_name;
     check_same_bag "derived = direct" result (Db.query db q_sql));
  (* a MIN view only supports MaxOA-compatible growth *)
  ignore
    (Db.exec db
       "CREATE MATERIALIZED VIEW vmin AS SELECT pos, MIN(val) OVER (ORDER BY pos ROWS \
        BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS s FROM seq");
  let qmin_sql =
    "SELECT pos, MIN(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 2 \
     FOLLOWING) AS s FROM seq"
  in
  (match Advisor.answer db (Parser.query qmin_sql) with
   | None -> Alcotest.fail "expected MIN derivation"
   | Some (result, proposal) ->
     Alcotest.(check string) "min view" "vmin" proposal.Advisor.view_name;
     Alcotest.(check string) "strategy" "MaxOA-minmax"
       (Core.Derive.strategy_name proposal.Advisor.strategy);
     check_same_bag "min derived" result (Db.query db qmin_sql))

let test_advisor_avg_count_from_sum () =
  let db = db_with_seq [ 2.; 4.; 6.; 8. ] in
  ignore
    (Db.exec db
       "CREATE MATERIALIZED VIEW vs AS SELECT pos, SUM(val) OVER (ORDER BY pos ROWS \
        BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS s FROM seq");
  List.iter
    (fun agg ->
      let sql =
        Printf.sprintf
          "SELECT pos, %s(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 \
           FOLLOWING) AS s FROM seq"
          agg
      in
      match Advisor.answer db (Parser.query sql) with
      | None -> Alcotest.failf "%s not derivable from SUM view" agg
      | Some (result, _) -> check_same_bag (agg ^ " from SUM view") result (Db.query db sql))
    [ "AVG"; "COUNT"; "SUM" ]

let test_advisor_no_view () =
  let db = db_with_seq [ 1.; 2. ] in
  Alcotest.(check bool) "no views, no proposal" true
    (Advisor.answer db
       (Parser.query
          "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS s \
           FROM seq")
     = None)

let test_advisor_rejects_incompatible () =
  let db = db_with_seq [ 1.; 2.; 3. ] in
  ignore
    (Db.exec db
       "CREATE MATERIALIZED VIEW vmin AS SELECT pos, MIN(val) OVER (ORDER BY pos ROWS \
        BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS s FROM seq");
  (* window shrinking is not derivable from a MIN view *)
  Alcotest.(check bool) "shrink not derivable" true
    (Advisor.answer db
       (Parser.query
          "SELECT pos, MIN(val) OVER (ORDER BY pos ROWS BETWEEN CURRENT ROW AND \
           CURRENT ROW) AS s FROM seq")
     = None);
  (* SUM query from MIN view is not derivable *)
  Alcotest.(check bool) "agg mismatch" true
    (Advisor.answer db
       (Parser.query
          "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 \
           FOLLOWING) AS s FROM seq")
     = None)

let test_advisor_relational_sql_agrees () =
  (* the Fig. 10/13 SQL the advisor proposes must compute the same window
     column as the direct query, at body positions *)
  let db = db_with_seq [ 2.; 7.; 1.; 8.; 2.; 8.; 1.; 8. ] in
  ignore
    (Db.exec db
       "CREATE MATERIALIZED VIEW v21 AS SELECT pos, SUM(val) OVER (ORDER BY pos ROWS \
        BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS s FROM seq");
  let q_sql =
    "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 1 \
     FOLLOWING) AS s FROM seq"
  in
  match Advisor.proposals db (Parser.query q_sql) with
  | (p, _, _) :: _ ->
    (match p.Advisor.relational_sql with
     | None -> Alcotest.fail "expected a relational pattern"
     | Some pattern_sql ->
       (* note: the pattern reads the *view table*; the view stores only
          body positions, so completeness is approximated — load a
          complete matseq copy instead *)
       let raw =
         Rfview_core.Seqdata.raw_of_array [| 2.; 7.; 1.; 8.; 2.; 8.; 1.; 8. |]
       in
       let view = Rfview_core.Compute.sequence (Rfview_core.Frame.sliding ~l:2 ~h:1) raw in
       let db2 = Db.create () in
       add_matseq db2 view;
       let pattern_sql2 =
         (* retarget the generated SQL from the view name to matseq *)
         replace_all pattern_sql ~from:"v21" ~into:"matseq"
       in
       let result = Db.query db2 pattern_sql2 in
       let tbl = Hashtbl.create 16 in
       Relation.iter
         (fun row -> Hashtbl.replace tbl (Value.to_int (Row.get row 0)) (Row.get row 1))
         result;
       let direct = Db.query db q_sql in
       Relation.iter
         (fun row ->
           let k = Value.to_int (Row.get row 0) in
           match Hashtbl.find_opt tbl k with
           | Some v when Value.compare v (Row.get row 1) = 0 -> ()
           | _ -> Alcotest.failf "pattern disagrees at position %d" k)
         direct)
  | [] -> Alcotest.fail "expected a proposal"

let test_advisor_rejects_interleaved_partitions () =
  (* partitioning reduction must be refused when the partitions' order
     ranges interleave (concatenation would not be the global order) *)
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE tx (m INT, pos INT, amount FLOAT)");
  ignore
    (Db.exec db
       "INSERT INTO tx VALUES (1, 1, 1), (1, 5, 2), (2, 2, 3), (2, 6, 4)");
  ignore
    (Db.exec db
       "CREATE MATERIALIZED VIEW vint AS SELECT m, pos, SUM(amount) OVER (PARTITION \
        BY m ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS s FROM tx");
  Alcotest.(check bool) "interleaved rejected" true
    (Advisor.answer db
       (Parser.query
          "SELECT pos, SUM(amount) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 \
           FOLLOWING) AS s FROM tx")
     = None)

let test_advisor_partition_reduction () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE tx (m INT, pos INT, amount FLOAT)");
  (* partition column m is a prefix of the global order: concatenation is sound *)
  ignore
    (Db.exec db
       "INSERT INTO tx VALUES (1, 1, 1), (1, 2, 2), (1, 3, 3), (2, 4, 4), (2, 5, 5), \
        (3, 6, 6), (3, 7, 7), (3, 8, 8)");
  ignore
    (Db.exec db
       "CREATE MATERIALIZED VIEW vpart AS SELECT m, pos, SUM(amount) OVER (PARTITION \
        BY m ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS s FROM tx");
  let q_sql =
    "SELECT pos, SUM(amount) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 \
     FOLLOWING) AS s FROM tx"
  in
  match Advisor.answer db (Parser.query q_sql) with
  | None -> Alcotest.fail "expected partitioning reduction"
  | Some (result, proposal) ->
    Alcotest.(check bool) "reduced" true proposal.Advisor.partition_reduced;
    (* compare only the window column keyed by pos: the reduced answer
       lays out only the query's items *)
    check_same_bag "partition reduction result" result (Db.query db q_sql)

(* ---- CSV ---- *)

module Csv = Rfview_engine.Csv

let test_csv_roundtrip () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE t (a INT, b VARCHAR, c FLOAT, d DATE)");
  ignore
    (Db.exec db
       "INSERT INTO t VALUES (1, 'plain', 1.5, DATE '2002-02-26'), (2, 'comma, \
        quote\"', -3.25, NULL)");
  ignore (Db.exec db "INSERT INTO t (a) VALUES (3)");
  let text = Csv.to_string (Db.query db "SELECT * FROM t ORDER BY a") in
  let db2 = Db.create () in
  ignore (Db.exec db2 "CREATE TABLE t (a INT, b VARCHAR, c FLOAT, d DATE)");
  let n = Csv.import_string db2 ~table:"t" text in
  Alcotest.(check int) "imported rows" 3 n;
  check_same_bag "roundtrip" (Db.query db "SELECT * FROM t") (Db.query db2 "SELECT * FROM t")

let test_csv_parsing () =
  Alcotest.(check (list (list string))) "quoting"
    [ [ "a"; "b,c" ]; [ "d\"e"; "f\ng" ] ]
    (Csv.parse "a,\"b,c\"\r\n\"d\"\"e\",\"f\ng\"\n");
  Alcotest.(check (list (list string))) "empty fields"
    [ [ "1"; ""; "3" ] ]
    (Csv.parse "1,,3\n");
  Alcotest.(check bool) "unterminated rejected" true
    (match Csv.parse "\"oops" with exception Csv.Csv_error _ -> true | _ -> false)

let test_csv_header_mapping () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE t (a INT, b VARCHAR)");
  (* columns out of order, one missing *)
  let n = Csv.import_string db ~table:"t" "b\nhello\nworld\n" in
  Alcotest.(check int) "rows" 2 n;
  let r = Db.query db "SELECT a, b FROM t ORDER BY b" in
  Alcotest.(check bool) "a null" true (Value.is_null (Row.get (Relation.rows r).(0) 0));
  Alcotest.(check bool) "bad column rejected" true
    (match Csv.import_string db ~table:"t" "nope\nx\n" with
     | exception Csv.Csv_error _ -> true
     | _ -> false);
  Alcotest.(check bool) "bad int rejected" true
    (match Csv.import_string db ~table:"t" "a\nnot_an_int\n" with
     | exception Csv.Csv_error _ -> true
     | _ -> false)

(* ---- EXPLAIN ANALYZE ---- *)

let test_explain_analyze () =
  let db = db_with_seq [ 1.; 2.; 3. ] in
  match
    Db.exec db
      "EXPLAIN ANALYZE SELECT pos, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED \
       PRECEDING) AS s FROM seq"
  with
  | Db.Done profile ->
    let contains needle =
      let nl = String.length needle and hl = String.length profile in
      let rec go i = i + nl <= hl && (String.sub profile i nl = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "has window node" true (contains "Window [SUM]");
    Alcotest.(check bool) "has scan node" true (contains "Scan seq");
    Alcotest.(check bool) "has cardinalities" true (contains "3 rows")
  | Db.Relation _ -> Alcotest.fail "expected profile text"

(* ---- Query cache (paper §3's caching motivation) ---- *)

module Cache = Rfview_engine.Cache

let test_cache_hit_miss () =
  let db = db_with_seq [ 3.; 1.; 4.; 1.; 5.; 9.; 2.; 6. ] in
  let cache = Cache.create db in
  let q frame =
    Printf.sprintf
      "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN %s) AS s FROM seq" frame
  in
  (* first query: miss, admitted *)
  let r1, o1 = Cache.query cache (q "2 PRECEDING AND 1 FOLLOWING") in
  (match o1 with
   | Cache.Miss_cached _ -> ()
   | o -> Alcotest.failf "expected miss, got %s" (Cache.describe_outcome o));
  (* identical query again: hit via copy *)
  let r2, o2 = Cache.query cache (q "2 PRECEDING AND 1 FOLLOWING") in
  (match o2 with
   | Cache.Hit _ -> ()
   | o -> Alcotest.failf "expected hit, got %s" (Cache.describe_outcome o));
  check_same_bag "copy hit" r1 r2;
  (* wider window: hit by derivation, equal to direct execution *)
  let r3, o3 = Cache.query cache (q "3 PRECEDING AND 2 FOLLOWING") in
  (match o3 with
   | Cache.Hit p ->
     Alcotest.(check bool) "derived, not copied" true
       (Rfview_core.Derive.strategy_name p.Advisor.strategy <> "copy")
   | o -> Alcotest.failf "expected derivation hit, got %s" (Cache.describe_outcome o));
  check_same_bag "derived result" r3 (Db.query db (q "3 PRECEDING AND 2 FOLLOWING"));
  (* non-window query bypasses *)
  let _, o4 = Cache.query cache "SELECT pos FROM seq" in
  Alcotest.(check bool) "bypass" true (o4 = Cache.Bypass);
  let s = Cache.stats cache in
  Alcotest.(check (pair int int)) "stats" (2, 1) (s.Cache.hits, s.Cache.misses);
  Alcotest.(check int) "bypasses" 1 s.Cache.bypasses

let test_cache_eviction () =
  let db = db_with_seq [ 1.; 2.; 3.; 4. ] in
  let cache = Cache.create ~capacity:2 db in
  let q l =
    Printf.sprintf
      "SELECT pos, MIN(val) OVER (ORDER BY pos ROWS BETWEEN %d PRECEDING AND \
       CURRENT ROW) AS s FROM seq"
      l
  in
  (* MIN views cannot serve shrinking queries, so each is a fresh miss *)
  ignore (Cache.query cache (q 3));
  ignore (Cache.query cache (q 2));
  ignore (Cache.query cache (q 1));
  Alcotest.(check int) "capacity respected" 2 (List.length (Cache.entries cache));
  (* the newest entries survive; results remain correct *)
  let r, _ = Cache.query cache (q 1) in
  check_same_bag "still correct" r (Db.query db (q 1))

let test_cache_stale_after_dml () =
  (* cache entries are materialized views: DML propagates to them, so a
     hit after DML reflects the new data *)
  let db = db_with_seq [ 1.; 2.; 3. ] in
  let cache = Cache.create db in
  let q = "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS s FROM seq" in
  ignore (Cache.query cache q);
  ignore (Db.exec db "UPDATE seq SET val = 10 WHERE pos = 2");
  let r, o = Cache.query cache q in
  (match o with
   | Cache.Hit _ -> ()
   | o -> Alcotest.failf "expected hit, got %s" (Cache.describe_outcome o));
  check_same_bag "fresh data" r (Db.query db q)

(* ---- Suite ---- *)

let () =
  Alcotest.run "engine"
    [
      ( "ddl-dml",
        [
          Alcotest.test_case "roundtrip" `Quick test_ddl_dml_roundtrip;
          Alcotest.test_case "duplicate rejected" `Quick test_duplicate_table_rejected;
          Alcotest.test_case "plain view" `Quick test_plain_view_expansion;
        ] );
      ( "matview",
        [
          Alcotest.test_case "initial contents" `Quick test_matview_initial_contents;
          Alcotest.test_case "insert/update/delete" `Quick
            test_matview_incremental_insert_delete_update;
          Alcotest.test_case "partitioned" `Quick test_matview_partitioned;
          Alcotest.test_case "fallback on NULLs" `Quick test_matview_fallback_on_nulls;
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make ~count:100 ~name:"random DML stream" arb_dml_stream
               prop_matview_dml_stream);
        ] );
      ( "patterns",
        [
          Alcotest.test_case "MaxOA disjunctive" `Quick test_maxoa_pattern_disjunctive;
          Alcotest.test_case "MaxOA union" `Quick test_maxoa_pattern_union;
          Alcotest.test_case "MinOA disjunctive" `Quick test_minoa_pattern_disjunctive;
          Alcotest.test_case "MinOA union" `Quick test_minoa_pattern_union;
          Alcotest.test_case "MinOA colliding residues" `Quick
            test_minoa_pattern_colliding_residues;
          Alcotest.test_case "MinOA shrink" `Quick test_minoa_shrink;
          Alcotest.test_case "Fig.4 reconstruction" `Quick test_fig4_reconstruction;
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make ~count:60 ~name:"random patterns" arb_pattern_case
               prop_pattern);
        ] );
      ( "advisor",
        [
          Alcotest.test_case "exact + derivable" `Quick test_advisor_exact_and_derivable;
          Alcotest.test_case "AVG/COUNT from SUM" `Quick test_advisor_avg_count_from_sum;
          Alcotest.test_case "no view" `Quick test_advisor_no_view;
          Alcotest.test_case "rejects incompatible" `Quick test_advisor_rejects_incompatible;
          Alcotest.test_case "partitioning reduction" `Quick
            test_advisor_partition_reduction;
          Alcotest.test_case "interleaved partitions rejected" `Quick
            test_advisor_rejects_interleaved_partitions;
          Alcotest.test_case "proposed relational SQL agrees" `Quick
            test_advisor_relational_sql_agrees;
        ] );
      ( "csv",
        [
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "parsing" `Quick test_csv_parsing;
          Alcotest.test_case "header mapping" `Quick test_csv_header_mapping;
        ] );
      ( "analyze",
        [ Alcotest.test_case "explain analyze" `Quick test_explain_analyze ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss/derive" `Quick test_cache_hit_miss;
          Alcotest.test_case "eviction" `Quick test_cache_eviction;
          Alcotest.test_case "fresh after DML" `Quick test_cache_stale_after_dml;
        ] );
    ]
