(* Tests of the analysis library: the well-formedness checker (RF1xx),
   the lint rules (RF001-RF006) with golden firing / non-firing cases,
   the diagnostic registry, and the translation validator. *)

open Rfview_relalg
module A = Rfview_analysis
module Diagnostic = A.Diagnostic
module Check = A.Check
module Lint = A.Lint
module Verify = A.Verify
module P = Rfview_planner
module Logical = Rfview_planner.Logical
module Db = Rfview_engine.Database
module Core = Rfview_core

let () = Verify.enable ()

(* ---- Fixtures ---- *)

let db3 () =
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE a (x INT, u INT)");
  ignore (Db.exec db "CREATE TABLE b (y INT, v INT)");
  ignore (Db.exec db "CREATE TABLE seq (pos INT, val FLOAT)");
  ignore (Db.exec db "INSERT INTO a VALUES (1, 10), (2, 20), (3, 30)");
  ignore (Db.exec db "INSERT INTO b VALUES (1, 100), (2, 200), (4, 400)");
  ignore (Db.exec db "INSERT INTO seq VALUES (1, 1.5), (2, 2.5), (3, 3.5)");
  db

let bind db sql =
  P.Binder.bind_query (Db.binder_catalog db) (Rfview_sql.Parser.query sql)

let codes ds = List.sort_uniq compare (List.map (fun d -> d.Diagnostic.code) ds)

(* [check_codes msg plan expected actual] — the plan argument only keeps
   call sites readable next to the diagnostics they assert about. *)
let check_codes msg _plan expected actual =
  Alcotest.(check (list string)) msg expected actual

let int_col name = Schema.column name Dtype.Int
let str_col name = Schema.column name Dtype.String

let scan schema = Logical.Scan { table = "t"; schema }
let scan_xs = scan (Schema.make [ int_col "x"; str_col "s" ])

let sum_window ?(order = [ Sortop.key (Expr.Col 0) ]) ~frame input =
  Logical.Window_op
    {
      input;
      fns =
        [
          {
            Logical.func = Window.Agg Aggregate.Sum;
            arg = Expr.Col 0;
            partition = [];
            order;
            frame;
            name = "w";
          };
        ];
    }

let rows_frame lo hi = { Window.mode = Window.Rows; lo; hi }

(* ---- The checker: RF1xx on hand-built broken plans ---- *)

let test_check_clean_plans () =
  let db = db3 () in
  List.iter
    (fun sql ->
      Alcotest.(check (list string))
        (Printf.sprintf "no checker diagnostics for %s" sql)
        []
        (codes (Check.check (bind db sql))))
    [
      "SELECT x, u FROM a WHERE x > 1";
      "SELECT x, SUM(u) AS total FROM a GROUP BY x";
      "SELECT a.x, b.v FROM a, b WHERE a.x = b.y";
      "SELECT pos, val, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING \
       AND 1 FOLLOWING) AS s FROM seq ORDER BY pos";
      "SELECT DISTINCT x FROM a";
      "SELECT x FROM a UNION ALL SELECT y FROM b";
      "SELECT x FROM a LIMIT 2";
    ]

let test_check_col_out_of_bounds () =
  let plan = Logical.Project { input = scan_xs; exprs = [ (Expr.Col 5, "boom") ] } in
  check_codes "RF101" plan [ "RF101" ] (codes (Check.check plan));
  let plan = Logical.Filter { input = scan_xs; pred = Expr.Col (-1) } in
  check_codes "RF101 negative" plan [ "RF101" ] (codes (Check.check plan))

let test_check_ill_typed () =
  (* 's' + 1 cannot type *)
  let plan =
    Logical.Project
      { input = scan_xs; exprs = [ (Expr.Binop (Expr.Add, Expr.Col 1, Expr.Col 0), "e") ] }
  in
  check_codes "RF102" plan [ "RF102" ] (codes (Check.check plan))

let test_check_nonboolean_predicate () =
  let plan = Logical.Filter { input = scan_xs; pred = Expr.Col 0 } in
  check_codes "RF103" plan [ "RF103" ] (codes (Check.check plan))

let test_check_bad_frames () =
  let bad_neg = rows_frame (Window.Preceding (-2)) Window.Current_row in
  check_codes "RF104 negative offset"
    (sum_window ~frame:bad_neg scan_xs)
    [ "RF104" ]
    (codes (Check.check (sum_window ~frame:bad_neg scan_xs)));
  let bad_empty = rows_frame (Window.Following 2) (Window.Preceding 2) in
  check_codes "RF104 empty frame"
    (sum_window ~frame:bad_empty scan_xs)
    [ "RF104" ]
    (codes (Check.check (sum_window ~frame:bad_empty scan_xs)));
  let range = { Window.mode = Window.Range; lo = Window.Unbounded_preceding; hi = Window.Current_row } in
  let no_order = sum_window ~order:[] ~frame:range scan_xs in
  check_codes "RF104 range without single order key" no_order [ "RF104" ]
    (codes (Check.check no_order))

let test_check_uninferable_projection () =
  let plan =
    Logical.Project { input = scan_xs; exprs = [ (Expr.Const Value.Null, "n") ] }
  in
  check_codes "RF105" plan [ "RF105" ] (codes (Check.check plan))

let test_check_nonnumeric_sum () =
  let plan =
    Logical.Aggregate
      {
        input = scan_xs;
        group = [];
        aggs = [ { Groupop.kind = Aggregate.Sum; arg = Expr.Col 1; name = "s" } ];
      }
  in
  check_codes "RF106" plan [ "RF106" ] (codes (Check.check plan))

let test_check_rank_without_order () =
  let plan =
    Logical.Window_op
      {
        input = scan_xs;
        fns =
          [
            {
              Logical.func = Window.Row_number;
              arg = Expr.Col 0;
              partition = [];
              order = [];
              frame = rows_frame Window.Unbounded_preceding Window.Current_row;
              name = "rn";
            };
          ];
      }
  in
  check_codes "RF107" plan [ "RF107" ] (codes (Check.check plan))

let test_check_negative_limit () =
  let plan = Logical.Limit { input = scan_xs; n = -1 } in
  check_codes "RF108" plan [ "RF108" ] (codes (Check.check plan))

let test_check_union_mismatch () =
  let other = scan (Schema.make [ str_col "s" ]) in
  let plan =
    Logical.Union_all
      { left = Logical.Project { input = scan_xs; exprs = [ (Expr.Col 0, "x") ] };
        right = other }
  in
  check_codes "RF109" plan [ "RF109" ] (codes (Check.check plan))

let test_check_number_alias_contracts () =
  let plan =
    Logical.Number { input = scan_xs; partition = []; order = []; name = "x" }
  in
  check_codes "RF110 collision" plan [ "RF110" ] (codes (Check.check plan));
  let plan = Logical.Alias { input = scan_xs; rel = "" } in
  check_codes "RF110 empty alias" plan [ "RF110" ] (codes (Check.check plan))

let test_check_broken_subtree_reported_once () =
  (* the broken Project poisons its schema; ancestors are skipped, not
     crashed on *)
  let broken =
    Logical.Project { input = scan_xs; exprs = [ (Expr.Col 9, "boom") ] }
  in
  let plan = Logical.Sort { input = broken; keys = [ Sortop.key (Expr.Col 0) ] } in
  check_codes "only the root cause" plan [ "RF101" ] (codes (Check.check plan));
  Alcotest.(check bool) "not well-formed" false (Check.well_formed plan)

(* ---- Lint: golden firing / non-firing cases ---- *)

let test_lint_constant_conjunct () =
  let db = db3 () in
  let fires = Lint.plan (bind db "SELECT x FROM a WHERE 1 = 1") in
  check_codes "RF006 fires" fires [ "RF006" ] (codes fires);
  let quiet = Lint.plan (bind db "SELECT x FROM a WHERE x > 1") in
  check_codes "RF006 quiet" quiet [] (codes quiet)

let test_lint_unused_projection () =
  let db = db3 () in
  let fires = Lint.plan (bind db "SELECT x FROM (SELECT x, u FROM a) s") in
  check_codes "RF005 fires" fires [ "RF005" ] (codes fires);
  let quiet = Lint.plan (bind db "SELECT x, u FROM (SELECT x, u FROM a) s") in
  check_codes "RF005 quiet" quiet [] (codes quiet);
  (* DISTINCT consumes every column: nothing is dead *)
  let distinct = Lint.plan (bind db "SELECT DISTINCT x, u FROM a") in
  check_codes "RF005 distinct quiet" distinct [] (codes distinct)

let test_lint_frame_excludes_current_row () =
  let db = db3 () in
  let sql =
    "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 1 \
     PRECEDING) AS s FROM seq"
  in
  let fires = Lint.plan ~self_join:true (bind db sql) in
  Alcotest.(check bool) "RF001 fires under self-join" true
    (List.mem "RF001" (codes fires));
  let quiet = Lint.plan ~self_join:false (bind db sql) in
  Alcotest.(check bool) "RF001 quiet natively" false
    (List.mem "RF001" (codes quiet))

let test_lint_cumulative_self_join () =
  let db = db3 () in
  let sql =
    "SELECT pos, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS s \
     FROM seq"
  in
  let fires = Lint.plan ~self_join:true (bind db sql) in
  check_codes "RF004 fires for invertible SUM" fires [ "RF004" ] (codes fires);
  let quiet = Lint.plan ~self_join:false (bind db sql) in
  check_codes "RF004 quiet natively" quiet [] (codes quiet);
  (* MIN/MAX are not invertible: the recursion does not apply *)
  let max_sql =
    "SELECT pos, MAX(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS s \
     FROM seq"
  in
  let max_lint = Lint.plan ~self_join:true (bind db max_sql) in
  check_codes "RF004 quiet for MAX" max_lint [] (codes max_lint)

let test_lint_broken_plan_yields_nothing () =
  let broken = Logical.Limit { input = scan_xs; n = -7 } in
  Alcotest.(check (list string)) "lint defers to the checker" []
    (codes (Lint.plan broken))

let sliding l h = Core.Frame.sliding ~l ~h

let test_lint_derivation_coverage () =
  let lint ?(complete = true) view_frame view_agg query_frame =
    codes (Lint.derivation ~view_frame ~view_agg ~query_frame ~complete)
  in
  (* §4.2: delta_l + delta_h <= lx + hx *)
  Alcotest.(check (list string)) "covered MAX derivation is quiet" []
    (lint (sliding 1 1) Core.Agg.Max (sliding 2 1));
  Alcotest.(check (list string)) "uncovered MAX derivation fires" [ "RF002" ]
    (lint (sliding 1 1) Core.Agg.Max (sliding 3 3));
  Alcotest.(check (list string)) "shrinking MIN window fires" [ "RF002" ]
    (lint (sliding 1 1) Core.Agg.Min (sliding 0 0));
  Alcotest.(check (list string)) "cumulative MAX to sliding fires" [ "RF002" ]
    (lint Core.Frame.Cumulative Core.Agg.Max (sliding 1 1));
  (* SUM is invertible: MinOA handles shrink and growth alike *)
  Alcotest.(check (list string)) "SUM derivation is quiet" []
    (lint (sliding 1 1) Core.Agg.Sum (sliding 3 3))

let test_lint_derivation_completeness () =
  let ds =
    Lint.derivation ~view_frame:(sliding 2 1) ~view_agg:Core.Agg.Sum
      ~query_frame:(sliding 2 1) ~complete:false
  in
  Alcotest.(check (list string)) "incomplete view fires" [ "RF003" ] (codes ds);
  let ok =
    Lint.derivation ~view_frame:(sliding 2 1) ~view_agg:Core.Agg.Sum
      ~query_frame:(sliding 2 1) ~complete:true
  in
  Alcotest.(check (list string)) "complete view is quiet" [] (codes ok)

(* ---- The registry ---- *)

let test_registry () =
  let codes = List.map (fun i -> i.Diagnostic.r_code) Diagnostic.registry in
  Alcotest.(check (list string)) "codes are unique and sorted"
    (List.sort_uniq compare codes) codes;
  Alcotest.(check bool) "at least the documented rules" true
    (List.length codes >= 17);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "%s has an explanation" c)
        true
        (String.length (Diagnostic.explain c) > 0))
    codes;
  let d = Diagnostic.make ~code:"RF006" ~path:[ "Project"; "Filter" ] "msg" in
  Alcotest.(check string) "rendering" "RF006 info: msg [at Project/Filter]"
    (Diagnostic.to_string d);
  Alcotest.(check bool) "info is not an error" false (Diagnostic.is_error d);
  Alcotest.(check bool) "RF101 is an error" true
    (Diagnostic.is_error (Diagnostic.make ~code:"RF101" ~path:[] "msg"))

(* ---- The translation validator ---- *)

let test_verify_schema_preservation () =
  let before = scan_xs in
  let after = Logical.Project { input = scan_xs; exprs = [ (Expr.Col 0, "x") ] } in
  Alcotest.(check bool) "schema-changing pass is rejected" true
    (match Verify.validate ~pass:"test" ~before ~after with
     | exception Verify.Not_preserved _ -> true
     | () -> false);
  (* identity passes *)
  Verify.validate ~pass:"test" ~before ~after:before

let test_verify_rejects_broken_plans () =
  let broken = Logical.Limit { input = scan_xs; n = -7 } in
  Alcotest.(check bool) "broken after-plan is rejected" true
    (match Verify.validate ~pass:"test" ~before:broken ~after:broken with
     | exception Verify.Plan_invalid _ -> true
     | () -> false);
  Alcotest.(check bool) "check_plan raises" true
    (match Verify.check_plan ~context:"test" broken with
     | exception Verify.Plan_invalid _ -> true
     | () -> false)

let test_verify_hooks_optimizer () =
  (* with verification enabled, binding + optimizing + running the whole
     fixture workload is validated end to end *)
  Alcotest.(check bool) "verification enabled" true (Verify.enabled ());
  let db = db3 () in
  let r =
    Db.query db
      "SELECT a.x, b.v FROM a, b WHERE a.x = b.y AND a.u > 5 ORDER BY a.x"
  in
  Alcotest.(check int) "validated query still answers" 2
    (Relation.cardinality r)

let test_binder_rejects_uninferable_select () =
  let db = db3 () in
  Alcotest.(check bool) "bare NULL select item is a bind error" true
    (match bind db "SELECT NULL AS n FROM a" with
     | exception P.Binder.Bind_error _ -> true
     | _ -> false);
  (* a typed context makes it fine *)
  let plan = bind db "SELECT COALESCE(NULL, 1) AS n FROM a" in
  Alcotest.(check (list string)) "typed NULL is clean" [] (codes (Check.check plan))

let () =
  Alcotest.run "analysis"
    [
      ( "check",
        [
          Alcotest.test_case "clean plans" `Quick test_check_clean_plans;
          Alcotest.test_case "col out of bounds" `Quick test_check_col_out_of_bounds;
          Alcotest.test_case "ill-typed expr" `Quick test_check_ill_typed;
          Alcotest.test_case "non-boolean predicate" `Quick
            test_check_nonboolean_predicate;
          Alcotest.test_case "bad frames" `Quick test_check_bad_frames;
          Alcotest.test_case "uninferable projection" `Quick
            test_check_uninferable_projection;
          Alcotest.test_case "non-numeric SUM" `Quick test_check_nonnumeric_sum;
          Alcotest.test_case "rank without order" `Quick
            test_check_rank_without_order;
          Alcotest.test_case "negative limit" `Quick test_check_negative_limit;
          Alcotest.test_case "union mismatch" `Quick test_check_union_mismatch;
          Alcotest.test_case "number/alias contracts" `Quick
            test_check_number_alias_contracts;
          Alcotest.test_case "broken subtree" `Quick
            test_check_broken_subtree_reported_once;
        ] );
      ( "lint",
        [
          Alcotest.test_case "constant conjunct" `Quick test_lint_constant_conjunct;
          Alcotest.test_case "unused projection" `Quick test_lint_unused_projection;
          Alcotest.test_case "frame excludes current row" `Quick
            test_lint_frame_excludes_current_row;
          Alcotest.test_case "cumulative self-join" `Quick
            test_lint_cumulative_self_join;
          Alcotest.test_case "broken plan yields nothing" `Quick
            test_lint_broken_plan_yields_nothing;
          Alcotest.test_case "derivation coverage" `Quick
            test_lint_derivation_coverage;
          Alcotest.test_case "derivation completeness" `Quick
            test_lint_derivation_completeness;
        ] );
      ( "registry",
        [ Alcotest.test_case "registry" `Quick test_registry ] );
      ( "verify",
        [
          Alcotest.test_case "schema preservation" `Quick
            test_verify_schema_preservation;
          Alcotest.test_case "rejects broken plans" `Quick
            test_verify_rejects_broken_plans;
          Alcotest.test_case "hooks the optimizer" `Quick test_verify_hooks_optimizer;
          Alcotest.test_case "binder rejects uninferable select" `Quick
            test_binder_rejects_uninferable_select;
        ] );
    ]
